//! The job queue: submit/poll/fetch over a persistent worker pool.
//!
//! Each worker owns a private [`CompactSession`], so a long-lived queue
//! accumulates warm in-memory caches on top of the on-disk [`Store`]:
//! a repeated job is served from disk with **zero** solver invocations,
//! an edited job pays only for what the edit reaches. Jobs are isolated
//! the way [`rsg_geom::par::par_map`] isolates batch items — a panic is
//! caught per job, reported as a typed [`ServeError::WorkerPanic`], and
//! the worker replaces its (possibly poisoned) session and keeps
//! serving; errors come out as the same deterministic error classes the
//! synchronous flows produce.

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::payload::{
    Artifact, JobKind, ServeReport, ServedBinding, ServedConstraint, ServedPitch, ServedResult,
};
use crate::store::{chip_key, library_key, Store, StoreKey};
use rsg_compact::backend::{Balanced, BellmanFord, SimplexPitch, Solver, Topological};
use rsg_compact::hier::{ChipCompaction, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_compact::leaf::{self, CompactionResult, LibraryJob, PitchBinding};
use rsg_layout::{write_cif, write_rsgl, CellId, CellTable, DesignRules};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock that shrugs off poisoning: the shared state is only ever
/// written in small committed steps, and per-job panics are already
/// caught inside the worker, so a poisoned mutex carries no torn data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The solver backends the service can run. A plain enum instead of a
/// trait object so the choice is `Copy`, hashable into nothing (the
/// *name* is what the store key folds), and constructible in config
/// files later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// [`BellmanFord::SORTED`] — the deterministic default.
    #[default]
    BellmanFordSorted,
    /// [`BellmanFord::ARBITRARY`] — insertion-order relaxation.
    BellmanFordArbitrary,
    /// [`Topological`] — acyclic-first longest path.
    Topological,
    /// [`Balanced`] — slack-splitting placement.
    Balanced,
    /// [`SimplexPitch`] — LP relaxation for the pitch variables.
    SimplexPitch,
}

impl SolverChoice {
    /// The backend instance (all backends are stateless unit values).
    pub fn solver(self) -> &'static dyn Solver {
        match self {
            SolverChoice::BellmanFordSorted => &BellmanFord::SORTED,
            SolverChoice::BellmanFordArbitrary => &BellmanFord::ARBITRARY,
            SolverChoice::Topological => &Topological,
            SolverChoice::Balanced => &Balanced,
            SolverChoice::SimplexPitch => &SimplexPitch,
        }
    }
}

/// Queue configuration. The rules/solver/options triple is fixed per
/// queue — it is part of every store key, so one queue serves one solve
/// context and distinct contexts never alias.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Design rules every job is solved under.
    pub rules: DesignRules,
    /// Solver backend.
    pub solver: SolverChoice,
    /// Hierarchical-compaction options (the deadline inside
    /// [`HierOptions::limits`] applies per job but never enters keys).
    pub opts: HierOptions,
    /// Re-solve store hits and diff against the stored bytes. A
    /// mismatch evicts the entry, counts
    /// [`ServeMetrics::verify_mismatches`], and serves the fresh
    /// result. For audits — roughly doubles the cost of hits.
    pub verify: bool,
}

impl ServeConfig {
    /// Defaults: auto worker count, [`SolverChoice::BellmanFordSorted`],
    /// default [`HierOptions`], verify off.
    pub fn new(rules: DesignRules) -> ServeConfig {
        ServeConfig {
            workers: 0,
            rules,
            solver: SolverChoice::default(),
            opts: HierOptions::default(),
            verify: false,
        }
    }
}

/// One unit of work.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A batch library job (independent leaf cells + interfaces).
    Library(LibraryJob),
    /// A whole-chip job: substitute the compacted `library` into
    /// `table`, then re-place every assembly cell under `top`.
    Chip {
        /// The chip hierarchy.
        table: CellTable,
        /// Root cell.
        top: CellId,
        /// Leaf-library jobs compacted (or cache-served) first.
        library: Vec<LibraryJob>,
    },
}

/// Handle returned by [`JobQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobId(usize);

/// Non-blocking job state, from [`JobQueue::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is on it.
    Running,
    /// Finished — [`JobQueue::fetch`] returns immediately.
    Done,
}

/// A finished job: the served result plus provenance and a metrics
/// snapshot taken at fetch time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The compacted, rendered result.
    pub result: ServedResult,
    /// `true` when the result came off disk without solving.
    pub from_store: bool,
    /// The content key the job resolved to.
    pub key: StoreKey,
    /// Queue-wide metrics snapshot.
    pub metrics: ServeMetrics,
}

enum Slot {
    Queued(JobSpec),
    Running,
    Done(Box<Result<Finished, ServeError>>),
}

#[derive(Clone)]
struct Finished {
    result: ServedResult,
    from_store: bool,
    key: StoreKey,
}

struct Shared {
    slots: Mutex<Vec<Slot>>,
    done: Condvar,
    receiver: Mutex<mpsc::Receiver<usize>>,
    store: Mutex<Store>,
    metrics: Mutex<ServeMetrics>,
    rules: DesignRules,
    solver: SolverChoice,
    opts: HierOptions,
    verify: bool,
}

/// Compaction-as-a-service over a [`Store`] and a worker pool.
pub struct JobQueue {
    shared: Arc<Shared>,
    sender: Option<mpsc::Sender<usize>>,
    workers: Vec<JoinHandle<()>>,
}

impl JobQueue {
    /// Opens (and sweeps) the store at `store_root` and starts the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the store cannot be opened or a worker
    /// thread cannot be spawned.
    pub fn new(
        store_root: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<JobQueue, ServeError> {
        let store = Store::open(store_root)?;
        let workers = if config.workers == 0 {
            rsg_compact::par::auto_threads()
        } else {
            config.workers
        };
        let (sender, receiver) = mpsc::channel();
        let shared = Arc::new(Shared {
            slots: Mutex::new(Vec::new()),
            done: Condvar::new(),
            receiver: Mutex::new(receiver),
            store: Mutex::new(store),
            metrics: Mutex::new(ServeMetrics::default()),
            rules: config.rules,
            solver: config.solver,
            opts: config.opts,
            verify: config.verify,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("rsg-serve-{i}"))
                .spawn(move || worker_loop(&shared))?;
            handles.push(handle);
        }
        Ok(JobQueue {
            shared,
            sender: Some(sender),
            workers: handles,
        })
    }

    /// Enqueues a job; returns immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueClosed`] when the pool has shut down.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        let sender = self.sender.as_ref().ok_or(ServeError::QueueClosed)?;
        let idx = {
            let mut slots = lock(&self.shared.slots);
            slots.push(Slot::Queued(spec));
            slots.len() - 1
        };
        lock(&self.shared.metrics).submitted += 1;
        sender.send(idx).map_err(|_| ServeError::QueueClosed)?;
        Ok(JobId(idx))
    }

    /// Non-blocking status check.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id this queue never issued.
    pub fn poll(&self, id: JobId) -> Result<JobStatus, ServeError> {
        let slots = lock(&self.shared.slots);
        match slots.get(id.0) {
            Some(Slot::Queued(_)) => Ok(JobStatus::Queued),
            Some(Slot::Running) => Ok(JobStatus::Running),
            Some(Slot::Done(_)) => Ok(JobStatus::Done),
            None => Err(ServeError::UnknownJob(id.0)),
        }
    }

    /// Blocks until the job finishes, then returns its output (or the
    /// job's own error). Fetching the same id again returns the same
    /// result with a fresh metrics snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for a foreign id; otherwise whatever
    /// the job itself produced.
    pub fn fetch(&self, id: JobId) -> Result<JobOutput, ServeError> {
        let mut slots = lock(&self.shared.slots);
        loop {
            match slots.get(id.0) {
                None => return Err(ServeError::UnknownJob(id.0)),
                Some(Slot::Done(outcome)) => {
                    let finished = outcome.as_ref().clone()?;
                    drop(slots);
                    return Ok(JobOutput {
                        result: finished.result,
                        from_store: finished.from_store,
                        key: finished.key,
                        metrics: self.metrics(),
                    });
                }
                Some(_) => {
                    slots = self
                        .shared
                        .done
                        .wait(slots)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// A consistent snapshot of the queue's counters and histograms.
    pub fn metrics(&self) -> ServeMetrics {
        let mut m = lock(&self.shared.metrics).clone();
        m.store = lock(&self.shared.store).counters();
        m
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; queued
        // jobs not yet picked up are abandoned (their fetch would
        // block forever, but fetch requires `&self`, so no fetch can
        // outlive the queue).
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn worker_loop(shared: &Shared) {
    let mut session = CompactSession::new();
    loop {
        let idx = {
            let receiver = lock(&shared.receiver);
            match receiver.recv() {
                Ok(idx) => idx,
                Err(_) => return, // queue dropped
            }
        };
        let spec = {
            let mut slots = lock(&shared.slots);
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            match std::mem::replace(slot, Slot::Running) {
                Slot::Queued(spec) => spec,
                other => {
                    *slot = other;
                    continue;
                }
            }
        };
        let outcome = match catch_unwind(AssertUnwindSafe(|| run_job(shared, &mut session, &spec)))
        {
            Ok(result) => result,
            Err(payload) => {
                // The session may hold state from a half-run job; a
                // fresh one restores the cold-run contract.
                session = CompactSession::new();
                lock(&shared.metrics).worker_panics += 1;
                Err(ServeError::WorkerPanic(panic_message(payload)))
            }
        };
        {
            let mut slots = lock(&shared.slots);
            if let Some(slot) = slots.get_mut(idx) {
                *slot = Slot::Done(Box::new(outcome));
            }
        }
        lock(&shared.metrics).completed += 1;
        shared.done.notify_all();
    }
}

fn run_job(
    shared: &Shared,
    session: &mut CompactSession,
    spec: &JobSpec,
) -> Result<Finished, ServeError> {
    let solver_name = shared.solver.solver().name();
    let lookup_started = Instant::now();
    let key = match spec {
        JobSpec::Library(job) => library_key(job, &shared.rules, solver_name, &shared.opts),
        JobSpec::Chip {
            table,
            top,
            library,
        } => chip_key(
            table,
            *top,
            library,
            &shared.rules,
            solver_name,
            &shared.opts,
        )?,
    };
    let stored = lock(&shared.store).get(key);
    lock(&shared.metrics)
        .lookup
        .record(lookup_started.elapsed());

    if let Some(stored) = stored {
        if shared.verify {
            let solve_started = Instant::now();
            let fresh = solve_spec(shared, session, spec)?;
            {
                let mut m = lock(&shared.metrics);
                m.solve.record(solve_started.elapsed());
                m.verified += 1;
            }
            if fresh != stored {
                lock(&shared.metrics).verify_mismatches += 1;
                let persist_started = Instant::now();
                lock(&shared.store).put(key, &fresh)?;
                lock(&shared.metrics)
                    .persist
                    .record(persist_started.elapsed());
                return Ok(Finished {
                    result: fresh,
                    from_store: false,
                    key,
                });
            }
        }
        lock(&shared.metrics).served_from_store += 1;
        return Ok(Finished {
            result: stored,
            from_store: true,
            key,
        });
    }

    let solve_started = Instant::now();
    let fresh = solve_spec(shared, session, spec)?;
    {
        let mut m = lock(&shared.metrics);
        m.solve.record(solve_started.elapsed());
        m.solves += 1;
    }
    let persist_started = Instant::now();
    lock(&shared.store).put(key, &fresh)?;
    lock(&shared.metrics)
        .persist
        .record(persist_started.elapsed());
    Ok(Finished {
        result: fresh,
        from_store: false,
        key,
    })
}

fn solve_spec(
    shared: &Shared,
    session: &mut CompactSession,
    spec: &JobSpec,
) -> Result<ServedResult, ServeError> {
    match spec {
        JobSpec::Library(job) => {
            let result = leaf::compact_limited_par(
                &job.cells,
                &job.interfaces,
                &shared.rules,
                shared.solver.solver(),
                &shared.opts.limits,
                shared.opts.parallelism,
            )?;
            render_library(&result)
        }
        JobSpec::Chip {
            table,
            top,
            library,
        } => {
            let out = session.compact_chip_with_library(
                table,
                *top,
                library,
                &shared.rules,
                shared.solver.solver(),
                &shared.opts,
            )?;
            render_chip(&out)
        }
    }
}

fn mirror_binding(b: &PitchBinding) -> ServedBinding {
    ServedBinding {
        name: b.name.clone(),
        value: b.value,
        tight: b
            .tight
            .iter()
            .map(|c| ServedConstraint {
                to: c.to.index(),
                from: c.from.index(),
                weight: c.weight,
                pitch: c.pitch.map(|(p, coeff)| (p.index(), coeff)),
            })
            .collect(),
    }
}

fn render_library(result: &CompactionResult) -> Result<ServedResult, ServeError> {
    let mut artifacts = Vec::with_capacity(result.cells.len());
    for cell in &result.cells {
        let mut table = CellTable::new();
        let id = table.insert(cell.clone())?;
        artifacts.push(Artifact {
            name: cell.name().to_owned(),
            rsgl: write_rsgl(&table, id)?,
            cif: write_cif(&table, id)?,
        });
    }
    let pitches = result
        .pitches
        .iter()
        .map(|(name, value)| ServedPitch {
            name: name.clone(),
            value: *value,
            pairs: 0,
        })
        .collect();
    let bindings = result.bindings.iter().map(mirror_binding).collect();
    Ok(ServedResult {
        kind: JobKind::Library,
        artifacts,
        pitches,
        bindings,
        report: ServeReport {
            cells: result.cells.len(),
            passes: 0,
            converged: true,
            constraints: result.constraints,
            solver_passes: 0,
            flat_boxes: 0,
            unknowns: result.unknowns,
        },
    })
}

fn render_chip(out: &ChipCompaction) -> Result<ServedResult, ServeError> {
    let chip = &out.chip;
    let name = chip.table.require(chip.top)?.name().to_owned();
    let artifacts = vec![Artifact {
        name,
        rsgl: write_rsgl(&chip.table, chip.top)?,
        cif: write_cif(&chip.table, chip.top)?,
    }];
    let mut pitches = Vec::new();
    let mut bindings = Vec::new();
    let mut report = ServeReport {
        cells: chip.cells.len(),
        converged: true,
        ..ServeReport::default()
    };
    for (j, leaf) in out.leaf.iter().enumerate() {
        for (pname, value) in &leaf.pitches {
            pitches.push(ServedPitch {
                name: format!("leaf{j}:{pname}"),
                value: *value,
                pairs: 0,
            });
        }
        bindings.extend(leaf.bindings.iter().map(mirror_binding));
        report.constraints += leaf.constraints;
        report.unknowns += leaf.unknowns;
    }
    for (cname, outcome) in &chip.cells {
        report.passes = report.passes.max(outcome.passes);
        report.converged &= outcome.converged;
        report.flat_boxes += outcome.report.flat_boxes;
        report.constraints += outcome.report.total_constraints();
        report.solver_passes += outcome.report.total_solver_passes();
        for p in &outcome.pitches {
            pitches.push(ServedPitch {
                name: format!("{cname}:{}:{}", p.axis, p.name),
                value: p.value,
                pairs: p.pairs,
            });
        }
    }
    Ok(ServedResult {
        kind: JobKind::Chip,
        artifacts,
        pitches,
        bindings,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::{Orientation, Point, Rect};
    use rsg_layout::{CellDefinition, Instance, Layer, Technology};

    fn tmp_root(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("rsg-queue-{tag}-{}-{nanos}", std::process::id()))
    }

    fn tiny_chip() -> (CellTable, CellId) {
        let mut table = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        leaf.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 8));
        leaf.add_box(Layer::Metal1, Rect::from_coords(8, 0, 12, 8));
        let leaf_id = table.insert(leaf).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(leaf_id, Point::new(0, 0), Orientation::NORTH));
        top.add_instance(Instance::new(
            leaf_id,
            Point::new(30, 0),
            Orientation::NORTH,
        ));
        let top_id = table.insert(top).unwrap();
        (table, top_id)
    }

    fn config() -> ServeConfig {
        let mut c = ServeConfig::new(Technology::mead_conway(2).rules);
        c.workers = 2;
        c
    }

    #[test]
    fn cold_then_warm_serves_from_store_with_zero_solves() {
        let root = tmp_root("warm");
        let (table, top) = tiny_chip();
        let spec = JobSpec::Chip {
            table,
            top,
            library: Vec::new(),
        };
        let cold = {
            let queue = JobQueue::new(&root, config()).unwrap();
            let id = queue.submit(spec.clone()).unwrap();
            let out = queue.fetch(id).unwrap();
            assert!(!out.from_store, "first run cannot be a store hit");
            assert_eq!(out.metrics.solves, 1);
            out
        };
        // A fresh queue (fresh sessions, fresh process state in
        // spirit): the same job is served from disk, zero solves.
        let queue = JobQueue::new(&root, config()).unwrap();
        let id = queue.submit(spec).unwrap();
        let warm = queue.fetch(id).unwrap();
        assert!(warm.from_store, "second run must come from the store");
        assert_eq!(warm.metrics.solves, 0, "warm run must not solve");
        assert_eq!(warm.key, cold.key);
        assert_eq!(warm.result, cold.result, "served bytes must be identical");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn library_jobs_are_served_and_cached() {
        let root = tmp_root("library");
        let mut cell = CellDefinition::new("lib");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 8));
        cell.add_box(Layer::Poly, Rect::from_coords(12, 0, 16, 8));
        let job = LibraryJob {
            cells: vec![cell],
            interfaces: vec![],
        };
        let queue = JobQueue::new(&root, config()).unwrap();
        let a = queue
            .fetch(queue.submit(JobSpec::Library(job.clone())).unwrap())
            .unwrap();
        let b = queue
            .fetch(queue.submit(JobSpec::Library(job)).unwrap())
            .unwrap();
        assert!(!a.from_store);
        assert!(b.from_store);
        assert_eq!(a.result, b.result);
        assert_eq!(a.result.kind, JobKind::Library);
        assert_eq!(a.result.artifacts.len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn verify_mode_replaces_a_forged_entry() {
        let root = tmp_root("verify");
        let (table, top) = tiny_chip();
        let spec = JobSpec::Chip {
            table,
            top,
            library: Vec::new(),
        };
        let (key, genuine) = {
            let queue = JobQueue::new(&root, config()).unwrap();
            let out = queue.fetch(queue.submit(spec.clone()).unwrap()).unwrap();
            (out.key, out.result)
        };
        // Forge a *well-formed but wrong* entry under the right key:
        // checksums pass, only a re-solve can tell.
        {
            let mut store = Store::open(&root).unwrap();
            let mut forged = genuine.clone();
            forged.report.constraints += 1;
            store.put(key, &forged).unwrap();
        }
        let mut cfg = config();
        cfg.verify = true;
        let queue = JobQueue::new(&root, cfg).unwrap();
        let out = queue.fetch(queue.submit(spec).unwrap()).unwrap();
        assert!(!out.from_store, "forged entry must not be served");
        assert_eq!(out.result, genuine);
        assert_eq!(out.metrics.verify_mismatches, 1);
        // The forged entry was replaced: a non-verify hit now matches.
        let queue2 = JobQueue::new(&root, config()).unwrap();
        let again = queue2.fetch(
            queue2
                .submit(JobSpec::Chip {
                    table: tiny_chip().0,
                    top: tiny_chip().1,
                    library: Vec::new(),
                })
                .unwrap(),
        );
        // (tiny_chip() rebuilds the identical table, so ids align.)
        let again = again.unwrap();
        assert!(again.from_store);
        assert_eq!(again.result, genuine);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn poll_reports_progress_and_unknown_ids_error() {
        let root = tmp_root("poll");
        let queue = JobQueue::new(&root, config()).unwrap();
        assert_eq!(
            queue.poll(JobId(99)),
            Err(ServeError::UnknownJob(99)),
            "foreign id must be rejected"
        );
        let (table, top) = tiny_chip();
        let id = queue
            .submit(JobSpec::Chip {
                table,
                top,
                library: Vec::new(),
            })
            .unwrap();
        queue.fetch(id).unwrap();
        assert_eq!(queue.poll(id), Ok(JobStatus::Done));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn infeasible_jobs_return_typed_errors_and_do_not_poison() {
        let root = tmp_root("error");
        let queue = JobQueue::new(&root, config()).unwrap();
        // A chip whose top references a cell table inconsistency is the
        // queue's business to report, not to panic over: unknown
        // library cell name.
        let (table, top) = tiny_chip();
        let bogus = LibraryJob {
            cells: vec![CellDefinition::new("no_such_cell")],
            interfaces: vec![],
        };
        let id = queue
            .submit(JobSpec::Chip {
                table: table.clone(),
                top,
                library: vec![bogus],
            })
            .unwrap();
        let err = queue.fetch(id).unwrap_err();
        assert!(matches!(err, ServeError::Chip(_)), "got {err:?}");
        // The pool survives and serves the next job normally.
        let ok = queue
            .fetch(
                queue
                    .submit(JobSpec::Chip {
                        table,
                        top,
                        library: Vec::new(),
                    })
                    .unwrap(),
            )
            .unwrap();
        assert!(!ok.from_store);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
