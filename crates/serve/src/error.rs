//! Typed failures of the service layer.

use rsg_compact::hier::{ChipError, HierError};
use rsg_compact::leaf::LeafError;
use rsg_layout::LayoutError;

/// Service-layer failure: storage, payload, or the compaction itself.
///
/// Store *corruption* is deliberately not a variant — a corrupt entry is
/// evicted and recomputed, surfacing only in the
/// [`crate::StoreCounters::evictions`] counter, never as an error the
/// client has to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A filesystem operation on the store failed (the `io::Error`,
    /// stringified — it is neither `Clone` nor comparable).
    Io(String),
    /// A payload could not be serialized or parsed.
    Payload(String),
    /// Layout serialization of a compacted result failed.
    Layout(LayoutError),
    /// The compaction itself failed (leaf or hierarchy pass).
    Chip(ChipError),
    /// The queue's worker pool has shut down.
    QueueClosed,
    /// No job with this id was ever submitted.
    UnknownJob(usize),
    /// A worker panicked while running the job. The worker's session is
    /// discarded and the pool keeps serving; resubmitting reruns cold.
    WorkerPanic(String),
    /// A client-side precondition failed (e.g. building the library
    /// jobs for a served chip flow).
    Client(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "store I/O failed: {m}"),
            ServeError::Payload(m) => write!(f, "store payload invalid: {m}"),
            ServeError::Layout(e) => write!(f, "serve serialization: {e}"),
            ServeError::Chip(e) => write!(f, "served compaction failed: {e}"),
            ServeError::QueueClosed => write!(f, "job queue is closed"),
            ServeError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServeError::WorkerPanic(m) => write!(f, "serve worker panicked: {m}"),
            ServeError::Client(m) => write!(f, "serve client error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}

impl From<LayoutError> for ServeError {
    fn from(e: LayoutError) -> ServeError {
        ServeError::Layout(e)
    }
}

impl From<ChipError> for ServeError {
    fn from(e: ChipError) -> ServeError {
        ServeError::Chip(e)
    }
}

impl From<HierError> for ServeError {
    fn from(e: HierError) -> ServeError {
        ServeError::Chip(ChipError::Hier(e))
    }
}

impl From<LeafError> for ServeError {
    fn from(e: LeafError) -> ServeError {
        ServeError::Chip(ChipError::Leaf(e))
    }
}
