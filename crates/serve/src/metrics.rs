//! Service observability: counters and per-phase latency histograms.

use crate::store::StoreCounters;
use std::time::Duration;

/// Log₂-bucketed wall-clock histogram: bucket `i` counts samples with
/// `2^i ≤ nanoseconds < 2^(i+1)` (bucket 0 also absorbs sub-ns zeros,
/// the last bucket absorbs everything ≥ 2^39 ns ≈ 9 minutes). Fixed
/// size, no allocation, merge-free — cheap enough to snapshot on every
/// fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LatencyHistogram::BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; LatencyHistogram::BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Number of log₂ buckets (covers 1 ns … ~9 min).
    pub const BUCKETS: usize = 40;

    /// Records one sample.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().max(1);
        let bucket = (127 - ns.leading_zeros()) as usize;
        self.buckets[bucket.min(Self::BUCKETS - 1)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; LatencyHistogram::BUCKETS] {
        &self.buckets
    }

    /// Upper bound (exclusive, in ns) of bucket `i`.
    pub fn bucket_ceiling_ns(i: usize) -> u128 {
        1u128 << (i + 1)
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count() == 0 {
            return write!(f, "(no samples)");
        }
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                write!(f, "  ")?;
            }
            first = false;
            let ceil = Self::bucket_ceiling_ns(i);
            if ceil >= 1_000_000_000 {
                write!(f, "<{}s:{n}", ceil / 1_000_000_000)?;
            } else if ceil >= 1_000_000 {
                write!(f, "<{}ms:{n}", ceil / 1_000_000)?;
            } else if ceil >= 1_000 {
                write!(f, "<{}us:{n}", ceil / 1_000)?;
            } else {
                write!(f, "<{ceil}ns:{n}")?;
            }
        }
        Ok(())
    }
}

/// Snapshot of everything the service counts. Returned by
/// [`crate::JobQueue::metrics`] and attached to every fetched job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs accepted by [`crate::JobQueue::submit`].
    pub submitted: u64,
    /// Jobs finished (successfully or not).
    pub completed: u64,
    /// Jobs answered from the store without solving.
    pub served_from_store: u64,
    /// Jobs that ran the compaction pipeline.
    pub solves: u64,
    /// Store hits re-solved in verify mode.
    pub verified: u64,
    /// Verify-mode re-solves that did **not** match the stored entry
    /// (the entry is evicted and replaced by the fresh result).
    pub verify_mismatches: u64,
    /// Worker panics contained by the per-job isolation.
    pub worker_panics: u64,
    /// The underlying store's hit/miss/eviction/write counters.
    pub store: StoreCounters,
    /// Wall clock of key derivation + store lookup, per job.
    pub lookup: LatencyHistogram,
    /// Wall clock of actual compaction solves, per solved job.
    pub solve: LatencyHistogram,
    /// Wall clock of serialization + atomic persist, per solved job.
    pub persist: LatencyHistogram,
}

impl std::fmt::Display for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed ({} from store, {} solved, {} panics)",
            self.submitted, self.completed, self.served_from_store, self.solves, self.worker_panics
        )?;
        writeln!(
            f,
            "store: {} hits, {} misses, {} evictions, {} writes; verify: {} ({} mismatches)",
            self.store.hits,
            self.store.misses,
            self.store.evictions,
            self.store.writes,
            self.verified,
            self.verify_mismatches
        )?;
        writeln!(f, "lookup:  {}", self.lookup)?;
        writeln!(f, "solve:   {}", self.solve)?;
        write!(f, "persist: {}", self.persist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1024));
        h.record(Duration::from_secs(1_000_000)); // clamps to last bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[LatencyHistogram::BUCKETS - 1], 1);
        // Zero durations land in bucket 0, not a panic.
        h.record(Duration::ZERO);
        assert_eq!(h.buckets()[0], 2);
    }

    #[test]
    fn display_is_compact() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.to_string(), "(no samples)");
        h.record(Duration::from_micros(3));
        let s = h.to_string();
        assert!(s.contains("us:1"), "{s}");
    }
}
