//! Persistent content-addressed store of compaction results.
//!
//! Entries are keyed by a [`StoreKey`] — a digest of the *complete*
//! solve input: deep geometry content, library-job content, design
//! rules, solver name, and [`HierOptions::content_tag`]. Everything the
//! result depends on is in the key, so a hit can be served without a
//! single solver invocation; everything the result does *not* depend on
//! (wall-clock deadline, parallelism, prune toggle — all
//! solution-identical or non-content-addressable) is deliberately kept
//! out, so equivalent requests share one entry.
//!
//! ## Durability contract
//!
//! *Writes are atomic*: an entry is serialized to a temp file in the
//! store directory and `rename`d into place, so a crash mid-write can
//! strand a temp file but never a half-entry under a valid name.
//! *Reads trust nothing*: every load re-checks the header frame, the
//! payload checksum, and the full payload parse; any violation evicts
//! the entry (counted, never surfaced as an error) and the service
//! recomputes — bit-identically, because the solve pipeline is
//! deterministic. Corruption can therefore cost time, never wrong mask
//! geometry.

use crate::error::ServeError;
use crate::payload::ServedResult;
use rsg_compact::hier::HierOptions;
use rsg_compact::leaf::LibraryJob;
use rsg_layout::hash::{deep_hashes, mix, ContentHasher};
use rsg_layout::{CellId, CellTable, DesignRules};
use std::path::{Path, PathBuf};

/// Content digest identifying one solve input. Displayed (and stored)
/// as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey(pub u64);

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn solver_name_hash(solver_name: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(solver_name);
    h.finish()
}

/// Key for a batch library job: job content × rules × solver × options.
pub fn library_key(
    job: &LibraryJob,
    rules: &DesignRules,
    solver_name: &str,
    opts: &HierOptions,
) -> StoreKey {
    StoreKey(mix(&[
        0x4c49425f4a4f42, // "LIB_JOB" domain tag
        job.content_hash(),
        rules.content_hash(),
        solver_name_hash(solver_name),
        opts.content_tag(),
    ]))
}

/// Key for a whole-chip job: deep geometry content of the hierarchy
/// under `top`, the library jobs' content, rules, solver, and options.
///
/// # Errors
///
/// Propagates [`ServeError::Layout`] when the hierarchy cannot be
/// deep-hashed (unknown or recursive cell references).
pub fn chip_key(
    table: &CellTable,
    top: CellId,
    library: &[LibraryJob],
    rules: &DesignRules,
    solver_name: &str,
    opts: &HierOptions,
) -> Result<StoreKey, ServeError> {
    let deep = deep_hashes(table, top)?;
    let top_hash = deep
        .get(&top)
        .copied()
        .ok_or_else(|| ServeError::Client("deep_hashes omitted the top cell".to_owned()))?;
    let mut jobs = ContentHasher::new();
    jobs.write_u64(library.len() as u64);
    for job in library {
        jobs.write_u64(job.content_hash());
    }
    Ok(StoreKey(mix(&[
        0x434849505f4a4f42, // "CHIP_JOB" domain tag
        top_hash,
        jobs.finish(),
        rules.content_hash(),
        solver_name_hash(solver_name),
        opts.content_tag(),
    ])))
}

/// Hit/miss/eviction counters of one [`Store`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups with no (valid) entry.
    pub misses: u64,
    /// Entries discarded because validation failed (truncation, bit
    /// flips, unparseable payload, unreadable file).
    pub evictions: u64,
    /// Entries persisted.
    pub writes: u64,
}

/// Outcome of a validation sweep over every entry on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Entries that validated end to end.
    pub kept: usize,
    /// Entries evicted (and files removed) as corrupt.
    pub evicted: usize,
}

const MAGIC: &str = "RSGSTORE 1";
const SUFFIX: &str = ".rsgstore";

fn payload_checksum(payload: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(payload);
    h.finish()
}

/// The on-disk map. All methods take `&mut self`; shared access is the
/// caller's concern (the [`crate::JobQueue`] holds it behind a mutex).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    counters: StoreCounters,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, then sweeps
    /// it: every existing entry is fully validated and corrupt ones are
    /// evicted up front, so later [`Store::get`]s on a surviving entry
    /// can still fail validation only if the file changed underneath.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created or read.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, ServeError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut store = Store {
            root,
            counters: StoreCounters::default(),
        };
        store.sweep()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Counters accumulated since [`Store::open`].
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The file a key maps to (exposed so tests can inject corruption).
    pub fn path_of(&self, key: StoreKey) -> PathBuf {
        self.root.join(format!("{key}{SUFFIX}"))
    }

    /// Number of entries currently on disk.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be read.
    pub fn len(&self) -> Result<usize, ServeError> {
        Ok(self.entry_paths()?.len())
    }

    /// Whether the store holds no entries.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be read.
    pub fn is_empty(&self) -> Result<bool, ServeError> {
        Ok(self.entry_paths()?.is_empty())
    }

    fn entry_paths(&self) -> Result<Vec<PathBuf>, ServeError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(SUFFIX))
            {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Looks up `key`. A missing entry is a plain miss; an entry that
    /// fails *any* validation step is evicted (file removed, counted)
    /// and reported as a miss — corrupt bytes are never returned.
    pub fn get(&mut self, key: StoreKey) -> Option<ServedResult> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.counters.misses += 1;
                return None;
            }
            Err(_) => {
                self.evict(&path);
                return None;
            }
        };
        match validate_entry(&bytes, Some(key)) {
            Ok(result) => {
                self.counters.hits += 1;
                Some(result)
            }
            Err(_) => {
                self.evict(&path);
                None
            }
        }
    }

    /// Persists `result` under `key` atomically: serialize to a temp
    /// file in the store directory, then rename into place. A reader
    /// either sees the old entry, the new entry, or no entry — never a
    /// torn one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when writing or renaming fails (the temp file
    /// is cleaned up best-effort).
    pub fn put(&mut self, key: StoreKey, result: &ServedResult) -> Result<(), ServeError> {
        let payload = result.encode();
        let entry = format!(
            "{MAGIC} {key} {} {:016x}\n{payload}",
            payload.len(),
            payload_checksum(&payload)
        );
        let tmp = self.root.join(format!(".tmp-{key}-{}", std::process::id()));
        std::fs::write(&tmp, entry.as_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, self.path_of(key)) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        self.counters.writes += 1;
        Ok(())
    }

    /// Validates every entry on disk, evicting corrupt ones.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be read (individual
    /// entry failures are evictions, not errors).
    pub fn sweep(&mut self) -> Result<SweepOutcome, ServeError> {
        let mut outcome = SweepOutcome::default();
        for path in self.entry_paths()? {
            let valid = std::fs::read(&path)
                .map_err(ServeError::from)
                .and_then(|bytes| validate_entry(&bytes, key_of_path(&path)))
                .is_ok();
            if valid {
                outcome.kept += 1;
            } else {
                self.evict(&path);
                outcome.evicted += 1;
            }
        }
        Ok(outcome)
    }

    fn evict(&mut self, path: &Path) {
        let _ = std::fs::remove_file(path);
        self.counters.evictions += 1;
        self.counters.misses += 1;
    }
}

fn key_of_path(path: &Path) -> Option<StoreKey> {
    let name = path.file_name()?.to_str()?.strip_suffix(SUFFIX)?;
    u64::from_str_radix(name, 16).ok().map(StoreKey)
}

/// Full validation: UTF-8, header frame, declared length, checksum,
/// payload parse, and (when known) that the entry's key matches the
/// name it was found under.
fn validate_entry(bytes: &[u8], want_key: Option<StoreKey>) -> Result<ServedResult, ServeError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ServeError::Payload("entry is not UTF-8".to_owned()))?;
    let nl = text
        .find('\n')
        .ok_or_else(|| ServeError::Payload("entry has no header line".to_owned()))?;
    let header = &text[..nl];
    let payload = &text[nl + 1..];
    let rest = header
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| ServeError::Payload("bad magic".to_owned()))?;
    let mut fields = rest.split(' ');
    let (key_hex, len_str, sum_hex) =
        match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(k), Some(l), Some(s), None) => (k, l, s),
            _ => return Err(ServeError::Payload("header field count".to_owned())),
        };
    let key = u64::from_str_radix(key_hex, 16)
        .map_err(|_| ServeError::Payload("bad key hex".to_owned()))?;
    if want_key.is_some_and(|want| want.0 != key) {
        return Err(ServeError::Payload(
            "entry key does not match its name".to_owned(),
        ));
    }
    let declared_len: usize = len_str
        .parse()
        .map_err(|_| ServeError::Payload("bad payload length".to_owned()))?;
    if declared_len != payload.len() {
        return Err(ServeError::Payload(format!(
            "declared payload length {declared_len} != actual {}",
            payload.len()
        )));
    }
    let declared_sum = u64::from_str_radix(sum_hex, 16)
        .map_err(|_| ServeError::Payload("bad checksum hex".to_owned()))?;
    if declared_sum != payload_checksum(payload) {
        return Err(ServeError::Payload("checksum mismatch".to_owned()));
    }
    ServedResult::decode(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Artifact, JobKind, ServeReport, ServedPitch};

    fn tmp_root(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("rsg-store-{tag}-{}-{nanos}", std::process::id()))
    }

    fn sample() -> ServedResult {
        ServedResult {
            kind: JobKind::Library,
            artifacts: vec![Artifact {
                name: "leaf".into(),
                rsgl: "cell leaf\nend\n".into(),
                cif: "DS 1 1 1;\nDF;\nE\n".into(),
            }],
            pitches: vec![ServedPitch {
                name: "p".into(),
                value: 8,
                pairs: 0,
            }],
            bindings: vec![],
            report: ServeReport {
                cells: 1,
                converged: true,
                ..ServeReport::default()
            },
        }
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let root = tmp_root("roundtrip");
        let mut store = Store::open(&root).unwrap();
        let key = StoreKey(0xabcd);
        assert_eq!(store.get(key), None);
        store.put(key, &sample()).unwrap();
        assert_eq!(store.get(key), Some(sample()));
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.writes, c.evictions), (1, 1, 1, 0));
        // Reopen: the sweep validates and keeps the entry.
        let mut reopened = Store::open(&root).unwrap();
        assert_eq!(reopened.get(key), Some(sample()));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_and_bitflipped_entries_are_evicted() {
        let root = tmp_root("corrupt");
        let mut store = Store::open(&root).unwrap();
        let key = StoreKey(7);
        store.put(key, &sample()).unwrap();
        let path = store.path_of(key);
        let pristine = std::fs::read(&path).unwrap();

        // Truncations at every byte boundary.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert_eq!(store.get(key), None, "truncation at {cut} served");
            assert!(!path.exists(), "truncated entry at {cut} not evicted");
            store.put(key, &sample()).unwrap();
        }
        // A bit flip in every byte.
        for i in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[i] ^= 0x10;
            if bytes == pristine {
                continue;
            }
            std::fs::write(&path, &bytes).unwrap();
            assert_eq!(store.get(key), None, "bit flip at byte {i} served");
            store.put(key, &sample()).unwrap();
        }
        assert!(store.counters().evictions > 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_sweep_evicts_garbage_files() {
        let root = tmp_root("sweep");
        {
            let mut store = Store::open(&root).unwrap();
            store.put(StoreKey(1), &sample()).unwrap();
        }
        std::fs::write(root.join("00000000000000ff.rsgstore"), b"garbage").unwrap();
        let mut store = Store::open(&root).unwrap();
        assert_eq!(store.len().unwrap(), 1, "garbage entry survived the sweep");
        assert_eq!(store.get(StoreKey(1)), Some(sample()));
        assert_eq!(store.counters().evictions, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn entry_under_the_wrong_name_is_evicted() {
        let root = tmp_root("rename");
        let mut store = Store::open(&root).unwrap();
        store.put(StoreKey(1), &sample()).unwrap();
        // An attacker (or a filesystem mishap) renames a valid entry to
        // a different key: the self-identifying header catches it.
        std::fs::rename(store.path_of(StoreKey(1)), store.path_of(StoreKey(2))).unwrap();
        assert_eq!(store.get(StoreKey(2)), None);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
