//! The served-result payload and its on-disk text encoding.
//!
//! A store entry holds *rendered artifacts* — RSGL and CIF text of the
//! compacted cells — plus the pitch bindings and a compact report, not
//! the in-memory compaction structs. Clients that want a [`CellTable`]
//! back read the RSGL; clients that want mask data take the CIF bytes
//! verbatim, which is what makes the warm path byte-identical to the
//! cold one by construction.
//!
//! The encoding is a line-oriented tag format with length-prefixed raw
//! blocks (`tag args… <len>\n<len raw bytes>\n`), so hostile cell names
//! and embedded newlines cannot corrupt the framing — the same failure
//! class the CIF writer's name validation closes (see
//! [`rsg_layout::cif_safe_name`]). Serialization is deterministic:
//! equal payloads encode to equal bytes.
//!
//! [`CellTable`]: rsg_layout::CellTable

use crate::error::ServeError;

/// What kind of job produced a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A batch library job: independent leaf cells with interfaces.
    Library,
    /// A whole-chip job: leaf pass + hierarchical placement.
    Chip,
}

/// One rendered cell (or chip root): its name and both serializations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Cell name (the chip root's name for chip jobs).
    pub name: String,
    /// `.rsgl` text — re-readable via [`rsg_layout::read_rsgl`].
    pub rsgl: String,
    /// CIF 2.0 text.
    pub cif: String,
}

/// A solved pitch, scoped by the cell or job that owns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedPitch {
    /// Scoped name, e.g. `leaf0:and_pitch` or `chip:x:a->b+0`.
    pub name: String,
    /// Solved value.
    pub value: i64,
    /// Abutting pairs sharing the pitch (0 for leaf-library pitches).
    pub pairs: usize,
}

/// Mirror of [`rsg_compact::leaf::PitchBinding`]'s tight constraints
/// with raw variable indices — solver ids are deliberately opaque
/// outside `rsg_solve`, so the service ships plain `usize`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedConstraint {
    /// Positive-side variable index.
    pub to: usize,
    /// Negative-side variable index.
    pub from: usize,
    /// Required minimum separation.
    pub weight: i64,
    /// Optional pitch term `(pitch index, coefficient)`.
    pub pitch: Option<(usize, i64)>,
}

/// A pitch with its zero-slack critical constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedBinding {
    /// The pitch variable's name.
    pub name: String,
    /// Its solved value.
    pub value: i64,
    /// The pitch-carrying constraints with zero slack at the solution.
    pub tight: Vec<ServedConstraint>,
}

/// Aggregate diagnostics of the solve that produced a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Cells in the payload (compacted assembly cells for chip jobs,
    /// library cells for library jobs).
    pub cells: usize,
    /// Largest x/y alternation count over the chip's assembly cells.
    pub passes: usize,
    /// Whether every cell reached its fixpoint.
    pub converged: bool,
    /// Total constraints generated across every solve.
    pub constraints: usize,
    /// Total solver relaxation passes.
    pub solver_passes: usize,
    /// Flat boxes the hierarchical abstracts summarized.
    pub flat_boxes: usize,
    /// Leaf-pass unknowns (edge + pitch variables).
    pub unknowns: usize,
}

/// A complete served result: what [`crate::Store`] persists and what
/// [`crate::JobQueue::fetch`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedResult {
    /// The producing job's kind.
    pub kind: JobKind,
    /// Rendered cells, in deterministic (input) order.
    pub artifacts: Vec<Artifact>,
    /// Solved pitches, leaf pitches first, then hierarchy pitches.
    pub pitches: Vec<ServedPitch>,
    /// Leaf-pass pitch diagnostics.
    pub bindings: Vec<ServedBinding>,
    /// Aggregate solve diagnostics.
    pub report: ServeReport,
}

/// Appends `tag args… <len>\n<blob>\n`.
fn push_blob(out: &mut String, header: &str, blob: &str) {
    out.push_str(header);
    out.push(' ');
    out.push_str(&blob.len().to_string());
    out.push('\n');
    out.push_str(blob);
    out.push('\n');
}

impl ServedResult {
    /// Deterministic text encoding; [`ServedResult::decode`] inverts it.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("served 1\n");
        out.push_str(match self.kind {
            JobKind::Library => "kind library\n",
            JobKind::Chip => "kind chip\n",
        });
        let r = &self.report;
        out.push_str(&format!(
            "report {} {} {} {} {} {} {}\n",
            r.cells,
            r.passes,
            u8::from(r.converged),
            r.constraints,
            r.solver_passes,
            r.flat_boxes,
            r.unknowns,
        ));
        out.push_str(&format!("artifacts {}\n", self.artifacts.len()));
        for a in &self.artifacts {
            push_blob(&mut out, "name", &a.name);
            push_blob(&mut out, "rsgl", &a.rsgl);
            push_blob(&mut out, "cif", &a.cif);
        }
        out.push_str(&format!("pitches {}\n", self.pitches.len()));
        for p in &self.pitches {
            push_blob(&mut out, &format!("pitch {} {}", p.value, p.pairs), &p.name);
        }
        out.push_str(&format!("bindings {}\n", self.bindings.len()));
        for b in &self.bindings {
            push_blob(
                &mut out,
                &format!("binding {} {}", b.value, b.tight.len()),
                &b.name,
            );
            for t in &b.tight {
                match t.pitch {
                    Some((pid, coeff)) => out.push_str(&format!(
                        "tight {} {} {} 1 {pid} {coeff}\n",
                        t.from, t.to, t.weight
                    )),
                    None => out.push_str(&format!("tight {} {} {} 0\n", t.from, t.to, t.weight)),
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses an [`ServedResult::encode`]d payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Payload`] on any framing or field violation; the
    /// store treats that as corruption and evicts the entry.
    pub fn decode(text: &str) -> Result<ServedResult, ServeError> {
        let mut cur = Cursor { text, pos: 0 };
        cur.expect_line("served 1")?;
        let kind = match cur.line()? {
            "kind library" => JobKind::Library,
            "kind chip" => JobKind::Chip,
            other => return Err(malformed(&format!("unknown kind line {other:?}"))),
        };
        let report = {
            let fields = cur.tagged_fields("report", 7)?;
            ServeReport {
                cells: parse_usize(&fields[0])?,
                passes: parse_usize(&fields[1])?,
                converged: match fields[2].as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(malformed(&format!("bad converged flag {other:?}"))),
                },
                constraints: parse_usize(&fields[3])?,
                solver_passes: parse_usize(&fields[4])?,
                flat_boxes: parse_usize(&fields[5])?,
                unknowns: parse_usize(&fields[6])?,
            }
        };
        let n_artifacts = parse_usize(&cur.tagged_fields("artifacts", 1)?[0])?;
        let mut artifacts = Vec::new();
        for _ in 0..checked_count(n_artifacts, cur.remaining())? {
            artifacts.push(Artifact {
                name: cur.blob("name", 0)?.1,
                rsgl: cur.blob("rsgl", 0)?.1,
                cif: cur.blob("cif", 0)?.1,
            });
        }
        let n_pitches = parse_usize(&cur.tagged_fields("pitches", 1)?[0])?;
        let mut pitches = Vec::new();
        for _ in 0..checked_count(n_pitches, cur.remaining())? {
            let (args, name) = cur.blob("pitch", 2)?;
            pitches.push(ServedPitch {
                name,
                value: parse_i64(&args[0])?,
                pairs: parse_usize(&args[1])?,
            });
        }
        let n_bindings = parse_usize(&cur.tagged_fields("bindings", 1)?[0])?;
        let mut bindings = Vec::new();
        for _ in 0..checked_count(n_bindings, cur.remaining())? {
            let (args, name) = cur.blob("binding", 2)?;
            let value = parse_i64(&args[0])?;
            let n_tight = parse_usize(&args[1])?;
            let mut tight = Vec::new();
            for _ in 0..checked_count(n_tight, cur.remaining())? {
                let fields = cur.tagged_fields("tight", usize::MAX)?;
                if fields.len() != 4 && fields.len() != 6 {
                    return Err(malformed("tight line has neither 4 nor 6 fields"));
                }
                let pitch = if fields[3] == "1" {
                    if fields.len() != 6 {
                        return Err(malformed("tight pitch flag set but term missing"));
                    }
                    Some((parse_usize(&fields[4])?, parse_i64(&fields[5])?))
                } else {
                    None
                };
                tight.push(ServedConstraint {
                    from: parse_usize(&fields[0])?,
                    to: parse_usize(&fields[1])?,
                    weight: parse_i64(&fields[2])?,
                    pitch,
                });
            }
            bindings.push(ServedBinding { name, value, tight });
        }
        cur.expect_line("end")?;
        if cur.pos != text.len() {
            return Err(malformed("trailing bytes after end marker"));
        }
        Ok(ServedResult {
            kind,
            artifacts,
            pitches,
            bindings,
            report,
        })
    }
}

fn malformed(reason: &str) -> ServeError {
    ServeError::Payload(reason.to_owned())
}

fn parse_usize(s: &str) -> Result<usize, ServeError> {
    s.parse()
        .map_err(|_| malformed(&format!("expected unsigned integer, got {s:?}")))
}

fn parse_i64(s: &str) -> Result<i64, ServeError> {
    s.parse()
        .map_err(|_| malformed(&format!("expected integer, got {s:?}")))
}

/// A declared element count can never exceed the remaining payload
/// bytes (every element costs at least one byte) — rejects hostile
/// counts before any allocation loop trusts them.
fn checked_count(n: usize, remaining: usize) -> Result<usize, ServeError> {
    if n > remaining {
        return Err(malformed(&format!(
            "declared count {n} exceeds remaining payload ({remaining} bytes)"
        )));
    }
    Ok(n)
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.text.len() - self.pos
    }

    /// Next `\n`-terminated line (newline consumed, not returned).
    fn line(&mut self) -> Result<&'a str, ServeError> {
        let rest = self
            .text
            .get(self.pos..)
            .ok_or_else(|| malformed("cursor out of bounds"))?;
        let nl = rest
            .find('\n')
            .ok_or_else(|| malformed("unterminated line"))?;
        self.pos += nl + 1;
        Ok(&rest[..nl])
    }

    fn expect_line(&mut self, want: &str) -> Result<(), ServeError> {
        let got = self.line()?;
        if got != want {
            return Err(malformed(&format!("expected {want:?}, got {got:?}")));
        }
        Ok(())
    }

    /// A `tag f1 f2 … fN` line; `n == usize::MAX` accepts any arity.
    fn tagged_fields(&mut self, tag: &str, n: usize) -> Result<Vec<String>, ServeError> {
        let line = self.line()?;
        let mut parts = line.split(' ');
        if parts.next() != Some(tag) {
            return Err(malformed(&format!("expected a {tag:?} line, got {line:?}")));
        }
        let fields: Vec<String> = parts.map(str::to_owned).collect();
        if n != usize::MAX && fields.len() != n {
            return Err(malformed(&format!(
                "{tag:?} line has {} fields, expected {n}",
                fields.len()
            )));
        }
        Ok(fields)
    }

    /// A `tag args… <len>` line followed by exactly `len` raw bytes and
    /// a newline. Returns the args (without the length) and the blob.
    fn blob(&mut self, tag: &str, n_args: usize) -> Result<(Vec<String>, String), ServeError> {
        let mut fields = self.tagged_fields(tag, n_args + 1)?;
        let len = parse_usize(&fields[n_args])?;
        fields.truncate(n_args);
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| malformed("blob length overflows"))?;
        let blob = self
            .text
            .get(self.pos..end)
            .ok_or_else(|| malformed("blob extends past payload"))?;
        self.pos = end;
        if self.text.get(self.pos..self.pos + 1) != Some("\n") {
            return Err(malformed("blob not newline-terminated"));
        }
        self.pos += 1;
        Ok((fields, blob.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServedResult {
        ServedResult {
            kind: JobKind::Chip,
            artifacts: vec![Artifact {
                name: "chip".into(),
                rsgl: "cell chip\nend\n".into(),
                cif: "DS 1 1 1;\nDF;\nE\n".into(),
            }],
            pitches: vec![ServedPitch {
                name: "leaf0:and_pitch".into(),
                value: 12,
                pairs: 3,
            }],
            bindings: vec![ServedBinding {
                name: "and_pitch".into(),
                value: 12,
                tight: vec![
                    ServedConstraint {
                        from: 0,
                        to: 2,
                        weight: 4,
                        pitch: Some((0, 1)),
                    },
                    ServedConstraint {
                        from: 1,
                        to: 0,
                        weight: -3,
                        pitch: None,
                    },
                ],
            }],
            report: ServeReport {
                cells: 1,
                passes: 2,
                converged: true,
                constraints: 44,
                solver_passes: 9,
                flat_boxes: 120,
                unknowns: 7,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = sample();
        let text = r.encode();
        assert_eq!(ServedResult::decode(&text).unwrap(), r);
        // Deterministic: same value, same bytes.
        assert_eq!(r.encode(), text);
    }

    #[test]
    fn hostile_names_cannot_break_framing() {
        let mut r = sample();
        r.pitches[0].name = "evil\nname artifacts 9".into();
        r.artifacts[0].name = "ds;\n(paren".into();
        let text = r.encode();
        assert_eq!(ServedResult::decode(&text).unwrap(), r);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let text = sample().encode();
        for cut in 0..text.len() {
            let Some(prefix) = text.get(..cut) else {
                continue; // not a char boundary
            };
            assert!(
                ServedResult::decode(prefix).is_err(),
                "truncation at {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A declared artifact count far beyond the payload size must be
        // rejected up front, not looped over.
        let text = "served 1\nkind chip\nreport 0 0 1 0 0 0 0\nartifacts 18446744073709551615\n";
        assert!(ServedResult::decode(text).is_err());
    }
}
