//! Compaction-as-a-service: a persistent content-addressed store plus a
//! job queue over a worker pool.
//!
//! The pipeline below this crate ([`rsg_compact`]) already makes a
//! single process incremental: a [`rsg_compact::incremental::CompactSession`]
//! re-pays only for edited cells. This crate extends that contract
//! *across* processes and machines-worth of batch work:
//!
//! - [`Store`] maps `(design content, rules content, solver name,
//!   option content)` to the finished artifacts — RSGL + CIF text,
//!   pitch values, tight-constraint bindings, and a solve report. Keys
//!   are pure content hashes ([`library_key`] / [`chip_key`]), so a hit
//!   is byte-identical to a cold recompute by construction. Entries are
//!   checksummed and self-identifying; anything that fails validation
//!   is silently **evicted and recomputed**, never trusted and never an
//!   error.
//! - [`JobQueue`] accepts batch library jobs and whole-chip jobs
//!   ([`JobSpec`]), runs them on a pool of workers each owning a
//!   private session, and serves store hits with **zero** solver
//!   invocations. Panics are contained per job, errors are the same
//!   deterministic classes the synchronous flows produce.
//! - [`ServeMetrics`] exposes hit/miss/eviction/solve counters and
//!   per-phase latency histograms on every fetch.
//!
//! ```
//! use rsg_serve::{JobQueue, JobSpec, ServeConfig};
//! use rsg_layout::Technology;
//! # let dir = std::env::temp_dir().join(format!("rsg-serve-doc-{}", std::process::id()));
//! let queue = JobQueue::new(&dir, ServeConfig::new(Technology::mead_conway(2).rules))?;
//! # let mut table = rsg_layout::CellTable::new();
//! # let mut cell = rsg_layout::CellDefinition::new("leaf");
//! # cell.add_box(rsg_layout::Layer::Poly, rsg_geom::Rect::from_coords(0, 0, 4, 8));
//! # let top = table.insert(cell)?;
//! let id = queue.submit(JobSpec::Chip { table, top, library: Vec::new() })?;
//! let out = queue.fetch(id)?;
//! assert!(!out.result.artifacts.is_empty());
//! // Resubmitting the same content is served from disk: zero solves.
//! # drop(queue);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod error;
mod metrics;
mod payload;
mod queue;
mod store;

pub use error::ServeError;
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use payload::{
    Artifact, JobKind, ServeReport, ServedBinding, ServedConstraint, ServedPitch, ServedResult,
};
pub use queue::{JobId, JobOutput, JobQueue, JobSpec, JobStatus, ServeConfig, SolverChoice};
pub use store::{chip_key, library_key, Store, StoreCounters, StoreKey, SweepOutcome};
