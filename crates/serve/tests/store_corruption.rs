//! Crash/corruption lane for the on-disk store: a damaged entry is
//! never trusted, never an error — it is silently evicted and the job
//! recomputed **bit-identically** to a cold run. Plus the warm-contract
//! proptest: for arbitrary small libraries, warm resubmission is served
//! from disk and equals the cold result exactly.

use proptest::prelude::*;
use rsg_compact::leaf::LibraryJob;
use rsg_geom::Rect;
use rsg_layout::{CellDefinition, CellId, CellTable, Instance, Layer, Technology};
use rsg_serve::{JobKind, JobQueue, JobSpec, ServeConfig};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!(
        "rsg-serve-corrupt-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

fn config() -> ServeConfig {
    let mut c = ServeConfig::new(Technology::mead_conway(2).rules);
    c.workers = 1;
    c
}

fn tiny_chip() -> (CellTable, CellId) {
    let mut table = CellTable::new();
    let mut leaf = CellDefinition::new("leaf");
    leaf.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 8));
    leaf.add_box(Layer::Metal1, Rect::from_coords(10, 0, 14, 8));
    let leaf_id = table.insert(leaf).unwrap();
    let mut top = CellDefinition::new("top");
    top.add_instance(Instance::new(
        leaf_id,
        rsg_geom::Point::new(0, 0),
        rsg_geom::Orientation::NORTH,
    ));
    top.add_instance(Instance::new(
        leaf_id,
        rsg_geom::Point::new(40, 0),
        rsg_geom::Orientation::NORTH,
    ));
    let top_id = table.insert(top).unwrap();
    (table, top_id)
}

fn chip_spec() -> JobSpec {
    let (table, top) = tiny_chip();
    JobSpec::Chip {
        table,
        top,
        library: Vec::new(),
    }
}

/// Every way of damaging the entry on disk — truncation at an arbitrary
/// byte, a bit flip at an arbitrary byte, replacement with garbage —
/// must lead to silent eviction and a recompute that matches the cold
/// run byte for byte.
#[test]
fn damaged_entries_are_evicted_and_recomputed_bit_identically() {
    let root = tmp_root("damage");
    let (cold, path) = {
        let queue = JobQueue::new(&root, config()).unwrap();
        let out = queue.fetch(queue.submit(chip_spec()).unwrap()).unwrap();
        assert!(!out.from_store);
        let store = rsg_serve::Store::open(&root).unwrap();
        let path = store.path_of(out.key);
        (out, path)
    };
    let pristine = std::fs::read(&path).unwrap();

    let mut damages: Vec<(String, Vec<u8>)> = Vec::new();
    for cut in [0, 1, 9, pristine.len() / 2, pristine.len() - 1] {
        damages.push((format!("truncate@{cut}"), pristine[..cut].to_vec()));
    }
    for at in [0, 4, 11, pristine.len() / 3, pristine.len() - 2] {
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x10;
        damages.push((format!("bitflip@{at}"), bytes));
    }
    damages.push(("garbage".into(), b"RSGSTORE 1 not a real entry\n".to_vec()));

    for (label, bytes) in damages {
        std::fs::write(&path, &bytes).unwrap();
        let queue = JobQueue::new(&root, config()).unwrap();
        let out = queue.fetch(queue.submit(chip_spec()).unwrap()).unwrap();
        assert!(
            !out.from_store,
            "{label}: a damaged entry must never be served"
        );
        assert_eq!(
            out.result, cold.result,
            "{label}: the recompute must be bit-identical to the cold run"
        );
        assert_eq!(out.key, cold.key, "{label}: the key is pure content");
        let evictions = out.metrics.store.evictions;
        assert!(
            evictions >= 1,
            "{label}: eviction must be counted (saw {evictions})"
        );
        // The recompute healed the store: the entry round-trips again.
        drop(queue);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            pristine,
            "{label}: the healed entry must match the original bytes"
        );
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// A crash mid-write leaves a temp file, never a half-written entry:
/// the atomic rename means the visible entry is always whole. Simulate
/// the aftermath (stray tmp + missing entry) and check recovery.
#[test]
fn stray_temp_files_do_not_shadow_entries() {
    let root = tmp_root("crash");
    let cold = {
        let queue = JobQueue::new(&root, config()).unwrap();
        queue.fetch(queue.submit(chip_spec()).unwrap()).unwrap()
    };
    let store = rsg_serve::Store::open(&root).unwrap();
    let path = store.path_of(cold.key);
    // The "crash": the real entry is gone, a half-written temp remains.
    let half = &std::fs::read(&path).unwrap()[..20];
    std::fs::write(root.join(format!(".tmp-{}-dead", cold.key)), half).unwrap();
    std::fs::remove_file(&path).unwrap();

    let queue = JobQueue::new(&root, config()).unwrap();
    let out = queue.fetch(queue.submit(chip_spec()).unwrap()).unwrap();
    assert!(!out.from_store, "the entry was lost in the crash");
    assert_eq!(out.result, cold.result, "recovery must match the cold run");
    std::fs::remove_dir_all(&root).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Warm resubmission ≡ cold, for arbitrary small libraries: whatever
    /// the content, the second queue serves the first queue's bytes.
    #[test]
    fn warm_resubmission_equals_cold_for_arbitrary_libraries(
        boxes in proptest::collection::vec(
            (0i64..40, 0i64..40, 1i64..10, 1i64..10, 0usize..3),
            1..6,
        ),
    ) {
        const LAYERS: [Layer; 3] = [Layer::Poly, Layer::Metal1, Layer::Diffusion];
        let mut cell = CellDefinition::new("arb");
        for (x, y, w, h, l) in boxes {
            cell.add_box(LAYERS[l], Rect::from_coords(x, y, x + w, y + h));
        }
        let job = LibraryJob { cells: vec![cell], interfaces: vec![] };
        let root = tmp_root("prop");

        let cold = {
            let queue = JobQueue::new(&root, config()).unwrap();
            queue.fetch(queue.submit(JobSpec::Library(job.clone())).unwrap())
        };
        let warm = {
            let queue = JobQueue::new(&root, config()).unwrap();
            queue.fetch(queue.submit(JobSpec::Library(job)).unwrap())
        };
        match (cold, warm) {
            (Ok(cold), Ok(warm)) => {
                prop_assert!(!cold.from_store, "first run cannot hit");
                prop_assert!(warm.from_store, "second run must hit");
                prop_assert_eq!(warm.result.clone(), cold.result.clone());
                prop_assert_eq!(warm.result.kind, JobKind::Library);
                prop_assert_eq!(warm.metrics.solves, 0, "warm must not solve");
            }
            // Infeasible content must fail identically hot and cold —
            // errors are never persisted, so both runs solve.
            (Err(c), Err(w)) => prop_assert_eq!(c, w),
            (c, w) => panic!("cold/warm disagree: cold {c:?}, warm {w:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
