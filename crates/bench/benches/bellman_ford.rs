//! Experiment E12 — §6.4.2: Bellman-Ford with a preliminary sort of the
//! edges "according to their abscissa in the initial layout ... In the
//! case where the initial ordering is preserved in the final layout
//! exactly one relaxation step is required instead of the |E| required in
//! the worst case."
//!
//! Besides wall-clock, the harness prints the measured pass counts for
//! both orders (the paper's actual claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_solve::solver::{solve, EdgeOrder};
use rsg_solve::ConstraintSystem;
use std::hint::black_box;

/// A chain-of-boxes system whose constraints are inserted back-to-front —
/// adversarial for insertion order, trivial after sorting.
fn reversed_chain(n: usize) -> ConstraintSystem {
    let mut s = ConstraintSystem::new();
    let vars: Vec<_> = (0..n).map(|k| s.add_var(k as i64 * 10)).collect();
    for k in (1..n).rev() {
        s.require(vars[k - 1], vars[k], 7);
    }
    s
}

/// A layout-derived system: constraints from the 16×16 multiplier array's
/// flattened metal1 boxes.
fn layout_system() -> ConstraintSystem {
    let out = rsg_mult::generator::generate(16, 16).unwrap();
    let boxes: Vec<(rsg_layout::Layer, rsg_geom::Rect)> =
        rsg_layout::flatten(out.rsg.cells(), out.top)
            .unwrap()
            .layer_rects()
            .iter()
            .filter(|(l, _)| *l == rsg_layout::Layer::Metal1)
            .copied()
            .collect();
    let tech = rsg_layout::Technology::mead_conway(2);
    let (sys, _) = rsg_compact::scanline::generate(
        &boxes,
        &tech.rules,
        rsg_compact::scanline::Method::Visibility,
        rsg_geom::Axis::X,
    );
    sys
}

fn bench_orders(c: &mut Criterion) {
    // Print the paper's pass-count table once.
    for n in [100usize, 1000, 5000] {
        let s = reversed_chain(n);
        let sorted = solve(&s, EdgeOrder::Sorted).unwrap();
        let unsorted = solve(&s, EdgeOrder::Arbitrary).unwrap();
        println!(
            "bellman-ford passes, reversed chain |V|={n}: sorted={} unsorted={}",
            sorted.passes, unsorted.passes
        );
    }
    let ls = layout_system();
    let sorted = solve(&ls, EdgeOrder::Sorted).unwrap();
    let unsorted = solve(&ls, EdgeOrder::Arbitrary).unwrap();
    println!(
        "bellman-ford passes, 16x16 multiplier metal1 ({} vars): sorted={} unsorted={}",
        ls.num_vars(),
        sorted.passes,
        unsorted.passes
    );

    let mut group = c.benchmark_group("bellman-ford/reversed-chain");
    for n in [100usize, 1000, 5000] {
        let s = reversed_chain(n);
        group.bench_with_input(BenchmarkId::new("sorted", n), &s, |b, s| {
            b.iter(|| black_box(solve(s, EdgeOrder::Sorted).unwrap().extent()))
        });
        group.bench_with_input(BenchmarkId::new("unsorted", n), &s, |b, s| {
            b.iter(|| black_box(solve(s, EdgeOrder::Arbitrary).unwrap().extent()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bellman-ford/multiplier-metal1");
    group.bench_function("sorted", |b| {
        b.iter(|| black_box(solve(&ls, EdgeOrder::Sorted).unwrap().extent()))
    });
    group.bench_function("unsorted", |b| {
        b.iter(|| black_box(solve(&ls, EdgeOrder::Arbitrary).unwrap().extent()))
    });
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
