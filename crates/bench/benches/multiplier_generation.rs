//! Experiment E1 — the paper's headline timing (§4.5): "A 32×32
//! Baugh-Wooley multiplier ... is generated in 5 seconds on a DEC-2060",
//! with execution time "divided into roughly three equal parts: reading in
//! the source file and building up the initial interface table, parsing
//! and executing the design and parameter file, and writing the output
//! file."
//!
//! The bench measures full generation at several sizes (shape: linear in
//! cell count) and the three phases separately; the absolute numbers are
//! ~4 decades faster than the DEC-2060.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn full_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplier/native");
    for n in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out = rsg_mult::generator::generate(black_box(n), black_box(n)).unwrap();
                black_box(out.top)
            })
        });
    }
    group.finish();
}

fn interpreted_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplier/design-file");
    for n in [8usize, 16, 32] {
        let params = rsg_mult::parameter_file_source(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = rsg_lang::run_design(
                    rsg_mult::cells::sample_layout().unwrap(),
                    rsg_mult::design_file_source(),
                    &params,
                )
                .unwrap();
                black_box(run.result)
            })
        });
    }
    group.finish();
}

fn three_phases(c: &mut Criterion) {
    // Phase 1: read the sample layout text + build the interface table.
    let sample_text = {
        let table = rsg_mult::cells::sample_layout().unwrap();
        let top = table.lookup("s_h").unwrap();
        rsg_layout::write_rsgl(&table, top).unwrap()
    };
    c.bench_function("multiplier/phase1-read-sample-32", |b| {
        b.iter(|| {
            let (_table, _) = rsg_layout::read_rsgl(black_box(&sample_text)).unwrap();
            let rsg =
                rsg_core::Rsg::from_sample(rsg_mult::cells::sample_layout().unwrap()).unwrap();
            black_box(rsg.interfaces().len())
        })
    });
    // Phase 2: parse + execute the design/parameter files.
    let params = rsg_mult::parameter_file_source(32, 32);
    c.bench_function("multiplier/phase2-execute-32", |b| {
        b.iter(|| {
            let run = rsg_lang::run_design(
                rsg_mult::cells::sample_layout().unwrap(),
                rsg_mult::design_file_source(),
                &params,
            )
            .unwrap();
            black_box(run.result)
        })
    });
    // Phase 3: write the output file.
    let out = rsg_mult::generator::generate(32, 32).unwrap();
    c.bench_function("multiplier/phase3-write-cif-32", |b| {
        b.iter(|| {
            black_box(
                rsg_layout::write_cif(out.rsg.cells(), out.top)
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group!(
    benches,
    full_generation,
    interpreted_generation,
    three_phases
);
criterion_main!(benches);
