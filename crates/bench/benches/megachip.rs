//! Experiment E23 — million-box mega-chip: flat vs hierarchical, serial
//! vs multi-core.
//!
//! The workload is the synthetic lattice of `rsg_bench` (DRC-clean by
//! construction, see the crate docs): a flat variant for the per-layer
//! DRC sweep and a four-deep hierarchical variant whose dependency
//! levels are [`rsg_bench::VARIANTS`] definitions wide, so the parallel
//! hierarchy walk has real fan-out. Rows:
//!
//! * `drc_flat/<n>` — serial full-chip DRC sweep at 10⁵ and ≥10⁶ boxes,
//! * `drc_flat/<n>/threads<k>` — the same sweep fanned across workers,
//! * `walk_hier/<n>` and `walk_hier/<n>/threads<k>` — the hierarchical
//!   compaction walk over the same material (the flat-vs-hier pair: the
//!   walk touches each *definition* once, the flat sweep touches every
//!   *box*),
//! * `flatten/<n>` — the hierarchy→flat expansion, for scale.
//!
//! Verified in-bench, before any timing: the flat sweep reports zero
//! violations at every parallelism, parallel DRC output is identical to
//! serial, and the `Threads(k)` walks produce bit-identical geometry
//! and pitches to the serial walk.
//!
//! `MEGACHIP_BOXES` overrides the large size (default 1 000 000) — CI
//! smoke runs set it to 100 000 to bound wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_bench::{megachip_flat, megachip_hier};
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::{compact_hierarchy, ChipLayout, HierOptions};
use rsg_compact::par::Parallelism;
use rsg_layout::{drc, flatten, FlatBox, FlatLayout, Technology};
use std::hint::black_box;

fn flat_layout(boxes: &[(rsg_layout::Layer, rsg_geom::Rect)]) -> FlatLayout {
    FlatLayout::from_boxes(
        boxes
            .iter()
            .map(|&(layer, rect)| FlatBox {
                layer,
                rect,
                depth: 0,
            })
            .collect(),
    )
}

fn assert_same_layout(par: &ChipLayout, serial: &ChipLayout) {
    assert_eq!(par.cells.len(), serial.cells.len(), "walk cell count");
    for ((n_par, o_par), (n_ser, o_ser)) in par.cells.iter().zip(&serial.cells) {
        assert_eq!(n_par, n_ser, "compaction order diverged");
        assert_eq!(o_par.cell, o_ser.cell, "geometry of `{n_par}` diverged");
        assert_eq!(
            o_par.pitches, o_ser.pitches,
            "pitches of `{n_par}` diverged"
        );
    }
}

fn bench_megachip(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let large: usize = std::env::var("MEGACHIP_BOXES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let sizes = if large > 100_000 {
        vec![100_000, large]
    } else {
        vec![large]
    };

    // --- per-layer DRC sweep over the flat lattice ---------------------
    let mut group = c.benchmark_group("megachip/drc_flat");
    for &n in &sizes {
        let flat = flat_layout(&megachip_flat(n));
        println!("megachip: flat lattice n={n} -> {} boxes", flat.len());
        // Correctness gate: clean by construction, and every worker
        // count reports the identical (empty) violation list.
        let serial = drc::check_flat_par(&flat, &tech.rules, Parallelism::Serial);
        assert!(serial.is_empty(), "lattice must be DRC-clean");
        for k in [2, 4] {
            let par = drc::check_flat_par(&flat, &tech.rules, Parallelism::Threads(k));
            assert_eq!(par, serial, "parallel DRC diverged at {k} threads");
        }
        group.bench_function(format!("{n}"), |b| {
            b.iter(|| black_box(drc::check_flat_par(&flat, &tech.rules, Parallelism::Serial)))
        });
        for k in [2usize, 4] {
            group.bench_function(format!("{n}/threads{k}"), |b| {
                b.iter(|| {
                    black_box(drc::check_flat_par(
                        &flat,
                        &tech.rules,
                        Parallelism::Threads(k),
                    ))
                })
            });
        }
    }
    group.finish();

    // --- hierarchy walk over the same material -------------------------
    let mut group = c.benchmark_group("megachip/walk_hier");
    for &n in &sizes {
        let chip = megachip_hier(n).expect("generates");
        println!(
            "megachip: hier variant n={n} -> {} flattened boxes, {} definitions",
            chip.boxes,
            chip.table.len()
        );
        let serial_opts = HierOptions::default();
        let serial = compact_hierarchy(&chip.table, chip.top, &tech.rules, &solver, &serial_opts)
            .expect("serial walk compacts");
        for k in [2, 4] {
            let opts = HierOptions {
                parallelism: Parallelism::Threads(k),
                ..HierOptions::default()
            };
            let par = compact_hierarchy(&chip.table, chip.top, &tech.rules, &solver, &opts)
                .expect("parallel walk compacts");
            assert_same_layout(&par, &serial);
        }
        group.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                let out =
                    compact_hierarchy(&chip.table, chip.top, &tech.rules, &solver, &serial_opts)
                        .expect("compacts");
                black_box(out.cells.len())
            })
        });
        for k in [2usize, 4] {
            let opts = HierOptions {
                parallelism: Parallelism::Threads(k),
                ..HierOptions::default()
            };
            group.bench_function(format!("{n}/threads{k}"), |b| {
                b.iter(|| {
                    let out = compact_hierarchy(&chip.table, chip.top, &tech.rules, &solver, &opts)
                        .expect("compacts");
                    black_box(out.cells.len())
                })
            });
        }
        group.bench_function(format!("{n}/flatten"), |b| {
            b.iter(|| {
                let flat = flatten(&chip.table, chip.top).expect("flattens");
                black_box(flat.len())
            })
        });
    }
    group.finish();
}

criterion_group!(megachip, bench_megachip);
criterion_main!(megachip);
