//! Experiments E17/E18 — the `rsg-solve` subsystem.
//!
//! E17: the one-pass topological longest path vs sorted Bellman-Ford on
//! acyclic chains (both costs shrink once the CSR graph is cached on the
//! system; the topological pass does strictly less work per solve).
//!
//! E18: the alternating x/y engine with and without warm-started
//! sweeps. The harness prints the total relaxation passes of both modes
//! — the warm run seeds each sweep with the previous alternation's
//! positions, so the steady state costs one verification pass per sweep
//! instead of a full cold relaxation. Results are asserted bit-for-bit
//! identical in-bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_compact::engine::{compact_xy_with, WarmStart};
use rsg_compact::BellmanFord;
use rsg_geom::{Rect, Vector};
use rsg_layout::{CellDefinition, Layer, Technology};
use rsg_solve::solver::{solve, solve_topo, EdgeOrder};
use rsg_solve::ConstraintSystem;
use std::hint::black_box;

/// An acyclic chain-with-shortcuts system of `n` variables — the E17
/// workload (no `require_exact`, so the topological order exists).
fn acyclic_chain(n: usize) -> ConstraintSystem {
    let mut s = ConstraintSystem::new();
    let vars: Vec<_> = (0..n).map(|k| s.add_var(k as i64 * 10)).collect();
    for w in vars.windows(2) {
        s.require(w[0], w[1], 7);
    }
    // Forward shortcuts every 5 steps keep the graph interesting.
    for k in (0..n.saturating_sub(5)).step_by(5) {
        s.require(vars[k], vars[k + 5], 30);
    }
    s
}

fn bench_topo_vs_bellman(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    for n in [100usize, 1000, 5000] {
        let s = acyclic_chain(n);
        // Correctness gate + the E17 pass-count table.
        let bf = solve(&s, EdgeOrder::Sorted).unwrap();
        let topo = solve_topo(&s).expect("chain is acyclic");
        assert_eq!(topo.positions(), bf.positions(), "E17 equivalence");
        println!(
            "solver n={n}: bellman passes={} topo passes={}",
            bf.passes, topo.passes
        );
        group.bench_with_input(BenchmarkId::new("bellman", n), &s, |b, s| {
            b.iter(|| black_box(solve(s, EdgeOrder::Sorted).unwrap().extent()))
        });
        group.bench_with_input(BenchmarkId::new("topo", n), &s, |b, s| {
            b.iter(|| black_box(solve_topo(s).unwrap().extent()))
        });
    }
    group.finish();
}

/// The E18 workload: a loose cell tiled 4×4, compacted to the x/y
/// fixpoint.
fn tiled_array() -> Vec<(Layer, Rect)> {
    let mut cell = CellDefinition::new("tile");
    cell.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
    cell.add_box(Layer::Metal1, Rect::from_coords(16, 5, 28, 25));
    cell.add_box(Layer::Poly, Rect::from_coords(34, 0, 38, 30));
    let mut out = Vec::new();
    for row in 0..4i64 {
        for col in 0..4i64 {
            let shift = Vector::new(col * 48, row * 36);
            for (l, r) in cell.boxes() {
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

fn bench_engine_cold_vs_warm(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let boxes = tiled_array();

    // Correctness gate + the E18 pass-count table.
    let cold = compact_xy_with(
        &boxes,
        &tech.rules,
        &BellmanFord::SORTED,
        10,
        WarmStart::Cold,
    )
    .unwrap();
    let warm = compact_xy_with(
        &boxes,
        &tech.rules,
        &BellmanFord::SORTED,
        10,
        WarmStart::Warm,
    )
    .unwrap();
    assert_eq!(cold.boxes, warm.boxes, "E18 equivalence");
    println!(
        "engine tiled 4x4: alternations={} cold relaxation passes={} warm={}",
        cold.passes + 1,
        cold.report.total_solver_passes(),
        warm.report.total_solver_passes()
    );

    let mut group = c.benchmark_group("engine");
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(
                compact_xy_with(
                    &boxes,
                    &tech.rules,
                    &BellmanFord::SORTED,
                    10,
                    WarmStart::Cold,
                )
                .unwrap()
                .passes,
            )
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(
                compact_xy_with(
                    &boxes,
                    &tech.rules,
                    &BellmanFord::SORTED,
                    10,
                    WarmStart::Warm,
                )
                .unwrap()
                .passes,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topo_vs_bellman, bench_engine_cold_vs_warm);
criterion_main!(benches);
