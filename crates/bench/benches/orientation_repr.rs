//! Experiment E2 — §2.6's representation argument: the ℤ₄ × 𝔹 pair
//! composes and inverts with a couple of integer operations, where "2×2
//! matrices of real numbers ... require storage and manipulation of much
//! more information than is needed [and] matrix composition and inversions
//! are also relatively costly computationally."

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_geom::{Orientation, Vector};
use std::hint::black_box;

/// The baseline the paper argues against: straight 2×2 integer matrices.
#[derive(Clone, Copy)]
struct MatrixOrientation([[i64; 2]; 2]);

impl MatrixOrientation {
    fn compose(self, other: MatrixOrientation) -> MatrixOrientation {
        let (a, b) = (self.0, other.0);
        MatrixOrientation([
            [
                a[0][0] * b[0][0] + a[0][1] * b[1][0],
                a[0][0] * b[0][1] + a[0][1] * b[1][1],
            ],
            [
                a[1][0] * b[0][0] + a[1][1] * b[1][0],
                a[1][0] * b[0][1] + a[1][1] * b[1][1],
            ],
        ])
    }

    fn inverse(self) -> MatrixOrientation {
        // Orthogonal with determinant ±1: inverse = adjugate / det.
        let m = self.0;
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        MatrixOrientation([
            [m[1][1] / det, -m[0][1] / det],
            [-m[1][0] / det, m[0][0] / det],
        ])
    }

    fn apply(self, v: Vector) -> Vector {
        Vector::new(
            self.0[0][0] * v.x + self.0[0][1] * v.y,
            self.0[1][0] * v.x + self.0[1][1] * v.y,
        )
    }
}

fn bench_compose(c: &mut Criterion) {
    let pairs: Vec<(Orientation, Orientation)> = Orientation::ALL
        .iter()
        .flat_map(|&a| Orientation::ALL.iter().map(move |&b| (a, b)))
        .collect();
    let matrix_pairs: Vec<(MatrixOrientation, MatrixOrientation)> = pairs
        .iter()
        .map(|&(a, b)| (MatrixOrientation(a.matrix()), MatrixOrientation(b.matrix())))
        .collect();

    c.bench_function("orientation/compose/z4xb", |bch| {
        bch.iter(|| {
            let mut acc = Orientation::NORTH;
            for &(a, b) in &pairs {
                acc = acc.compose(black_box(a).compose(black_box(b)));
            }
            black_box(acc)
        })
    });
    c.bench_function("orientation/compose/matrix", |bch| {
        bch.iter(|| {
            let mut acc = MatrixOrientation([[1, 0], [0, 1]]);
            for &(a, b) in &matrix_pairs {
                acc = acc.compose(black_box(a).compose(black_box(b)));
            }
            black_box(acc.0)
        })
    });
}

fn bench_inverse(c: &mut Criterion) {
    c.bench_function("orientation/inverse/z4xb", |bch| {
        bch.iter(|| {
            let mut acc = 0i64;
            for &o in &Orientation::ALL {
                acc += black_box(o).inverse().matrix()[0][0];
            }
            black_box(acc)
        })
    });
    let mats: Vec<MatrixOrientation> = Orientation::ALL
        .iter()
        .map(|o| MatrixOrientation(o.matrix()))
        .collect();
    c.bench_function("orientation/inverse/matrix", |bch| {
        bch.iter(|| {
            let mut acc = 0i64;
            for &m in &mats {
                acc += black_box(m).inverse().0[0][0];
            }
            black_box(acc)
        })
    });
}

fn bench_apply(c: &mut Criterion) {
    let vs: Vec<Vector> = (0..64).map(|k| Vector::new(k * 3 - 90, 17 - k)).collect();
    c.bench_function("orientation/apply/z4xb", |bch| {
        bch.iter(|| {
            let mut acc = Vector::ZERO;
            for &o in &Orientation::ALL {
                for &v in &vs {
                    acc += black_box(o).apply_vector(black_box(v));
                }
            }
            black_box(acc)
        })
    });
    let mats: Vec<MatrixOrientation> = Orientation::ALL
        .iter()
        .map(|o| MatrixOrientation(o.matrix()))
        .collect();
    c.bench_function("orientation/apply/matrix", |bch| {
        bch.iter(|| {
            let mut acc = Vector::ZERO;
            for &m in &mats {
                for &v in &vs {
                    acc += black_box(m).apply(black_box(v));
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_compose, bench_inverse, bench_apply);
criterion_main!(benches);
