//! Experiment E13 — §6.1: "if a cell A appears a hundred times in a
//! layout, a compactor operating on the final layout ... would be more
//! computationally expensive than one which cleverly compacts the cell A
//! only once ... These two factors can lead to orders of magnitude
//! improvements in computation costs."
//!
//! Three comparisons:
//!
//! * flat compaction of an n×n tiled array vs leaf compaction of the
//!   single cell (+ one pitch unknown) — flat cost grows with n², leaf
//!   cost is constant;
//! * solver backends on the same flat system;
//! * serial vs parallel batch compaction of a multi-cell leaf library
//!   (independent cells fan out across cores; results are byte-identical).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_compact::backend::{Balanced, BellmanFord, Solver};
use rsg_compact::leaf::{
    compact, compact_batch, LeafInterface, LibraryJob, Parallelism, PitchKind,
};
use rsg_compact::scanline::{generate, generate_with, Method, Prune};
use rsg_compact::solver::{solve, EdgeOrder};
use rsg_geom::{Axis, Rect, Vector};
use rsg_layout::{CellDefinition, Layer, Technology};
use std::hint::black_box;

/// The library cell: a loose two-bar poly/metal cell with compaction slack.
fn leaf_cell() -> CellDefinition {
    let mut c = CellDefinition::new("tile");
    c.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
    c.add_box(Layer::Metal1, Rect::from_coords(16, 5, 28, 25));
    c.add_box(Layer::Poly, Rect::from_coords(34, 0, 38, 30));
    c
}

/// The flat view: the cell tiled n×n at its sample pitch.
fn tiled(n: usize) -> Vec<(Layer, Rect)> {
    let cell = leaf_cell();
    let mut out = Vec::new();
    for row in 0..n as i64 {
        for col in 0..n as i64 {
            let shift = Vector::new(col * 48, row * 36);
            for (l, r) in cell.boxes() {
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

/// A leaf library of `n` distinct cells, each with its own interfaces —
/// the multi-leaf batch workload.
fn library_jobs(n: usize) -> Vec<LibraryJob> {
    (0..n as i64)
        .map(|k| {
            let mut c = CellDefinition::new(format!("tile{k}"));
            c.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30 + k % 7));
            c.add_box(Layer::Metal1, Rect::from_coords(16, 5, 28 + k % 5, 25));
            c.add_box(
                Layer::Diffusion,
                Rect::from_coords(34 + k % 3, 2, 42 + k % 3, 12),
            );
            c.add_box(
                Layer::Poly,
                Rect::from_coords(48 + k % 9, 0, 52 + k % 9, 30),
            );
            LibraryJob {
                cells: vec![c],
                interfaces: vec![
                    LeafInterface {
                        cell_a: 0,
                        cell_b: 0,
                        kind: PitchKind::VariableX {
                            initial: 64 + k,
                            weight: 1 + k % 4,
                        },
                        y_offset: 0,
                        name: format!("h{k}"),
                    },
                    LeafInterface {
                        cell_a: 0,
                        cell_b: 0,
                        kind: PitchKind::FixedX(0),
                        y_offset: 34,
                        name: format!("v{k}"),
                    },
                ],
            }
        })
        .collect()
}

fn bench_flat_vs_leaf(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let interfaces = vec![
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 48,
                weight: 16,
            },
            y_offset: 0,
            name: "pitch_x".into(),
        },
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::FixedX(0),
            y_offset: 36,
            name: "pitch_y".into(),
        },
    ];

    // Report the constraint-count table once: the full emission vs the
    // transitively-reduced emission the solver now sees by default.
    for n in [2usize, 4, 8] {
        let boxes = tiled(n);
        let (full, _) = generate_with(
            &boxes,
            &tech.rules,
            Method::Visibility,
            Axis::X,
            Prune::Keep,
            Parallelism::Serial,
        );
        let (pruned, _) = generate(&boxes, &tech.rules, Method::Visibility, Axis::X);
        println!(
            "flat {n}x{n}: {} vars, {} constraints unpruned, {} pruned",
            full.num_vars(),
            full.constraints().len(),
            pruned.constraints().len()
        );
    }
    let leaf = compact(
        &[leaf_cell()],
        &interfaces,
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    println!(
        "leaf: {} unknowns, {} constraints, pitch = {:?}",
        leaf.unknowns, leaf.constraints, leaf.pitches
    );

    let mut group = c.benchmark_group("compaction/flat");
    for n in [2usize, 4, 8, 16] {
        let boxes = tiled(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &boxes, |b, boxes| {
            b.iter(|| {
                let (sys, _) = generate(boxes, &tech.rules, Method::Visibility, Axis::X);
                black_box(solve(&sys, EdgeOrder::Sorted).unwrap().extent())
            })
        });
    }
    group.finish();

    // The pruning before/after pair at the headline size: same layout,
    // same solver, only the transitive reduction toggled. `flat/16`
    // above is the pruned path; this row is the full-emission control.
    let mut group = c.benchmark_group("compaction/pruning");
    let boxes = tiled(16);
    group.bench_with_input(BenchmarkId::new("unpruned", 16), &boxes, |b, boxes| {
        b.iter(|| {
            let (sys, _) = generate_with(
                boxes,
                &tech.rules,
                Method::Visibility,
                Axis::X,
                Prune::Keep,
                Parallelism::Serial,
            );
            black_box(solve(&sys, EdgeOrder::Sorted).unwrap().extent())
        })
    });
    group.finish();

    c.bench_function("compaction/leaf-once", |b| {
        b.iter(|| {
            let out = compact(
                &[leaf_cell()],
                &interfaces,
                &tech.rules,
                &BellmanFord::SORTED,
            )
            .unwrap();
            black_box(out.pitches)
        })
    });
}

fn bench_backends(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let boxes = tiled(8);
    let (sys, _) = generate(&boxes, &tech.rules, Method::Visibility, Axis::X);
    let mut group = c.benchmark_group("compaction/backend");
    for backend in [
        &BellmanFord::SORTED as &dyn Solver,
        &BellmanFord::ARBITRARY,
        &Balanced,
    ] {
        group.bench_function(backend.name(), |b| {
            b.iter(|| black_box(backend.solve_system(&sys, &[]).unwrap().positions))
        });
    }
    group.finish();
}

fn bench_leaf_library_batch(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let jobs = library_jobs(32);

    // Correctness gate once per run: the parallel path must be
    // byte-identical to the serial path.
    let serial = compact_batch(
        &jobs,
        &tech.rules,
        &BellmanFord::SORTED,
        Parallelism::Serial,
    );
    let parallel = compact_batch(&jobs, &tech.rules, &BellmanFord::SORTED, Parallelism::Auto);
    assert_eq!(serial, parallel, "parallel leaf batch diverged from serial");
    println!(
        "leaf-library batch: {} cells, parallel == serial (auto = {} threads)",
        jobs.len(),
        rsg_compact::par::auto_threads()
    );

    let mut group = c.benchmark_group("compaction/leaf-library");
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box(compact_batch(
                &jobs,
                &tech.rules,
                &BellmanFord::SORTED,
                Parallelism::Serial,
            ))
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(compact_batch(
                &jobs,
                &tech.rules,
                &BellmanFord::SORTED,
                Parallelism::Auto,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_vs_leaf,
    bench_backends,
    bench_leaf_library_batch
);
criterion_main!(benches);
