//! Experiment E13 — §6.1: "if a cell A appears a hundred times in a
//! layout, a compactor operating on the final layout ... would be more
//! computationally expensive than one which cleverly compacts the cell A
//! only once ... These two factors can lead to orders of magnitude
//! improvements in computation costs."
//!
//! Flat compaction of an n×n tiled array vs leaf compaction of the single
//! cell (+ one pitch unknown). The flat cost grows with n²; the leaf cost
//! is constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_compact::leaf::{compact, LeafInterface, PitchKind};
use rsg_compact::scanline::{generate, Method};
use rsg_compact::solver::{solve, EdgeOrder};
use rsg_geom::{Rect, Vector};
use rsg_layout::{CellDefinition, Layer, Technology};
use std::hint::black_box;

/// The library cell: a loose two-bar poly/metal cell with compaction slack.
fn leaf_cell() -> CellDefinition {
    let mut c = CellDefinition::new("tile");
    c.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
    c.add_box(Layer::Metal1, Rect::from_coords(16, 5, 28, 25));
    c.add_box(Layer::Poly, Rect::from_coords(34, 0, 38, 30));
    c
}

/// The flat view: the cell tiled n×n at its sample pitch.
fn tiled(n: usize) -> Vec<(Layer, Rect)> {
    let cell = leaf_cell();
    let mut out = Vec::new();
    for row in 0..n as i64 {
        for col in 0..n as i64 {
            let shift = Vector::new(col * 48, row * 36);
            for (l, r) in cell.boxes() {
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

fn bench_flat_vs_leaf(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let interfaces = vec![
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX { initial: 48, weight: 16 },
            y_offset: 0,
            name: "pitch_x".into(),
        },
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::FixedX(0),
            y_offset: 36,
            name: "pitch_y".into(),
        },
    ];

    // Report the constraint-count table once.
    for n in [2usize, 4, 8] {
        let boxes = tiled(n);
        let (sys, _) = generate(&boxes, &tech.rules, Method::Visibility);
        println!(
            "flat {n}x{n}: {} vars, {} constraints",
            sys.num_vars(),
            sys.constraints().len()
        );
    }
    let leaf = compact(&[leaf_cell()], &interfaces, &tech.rules).unwrap();
    println!(
        "leaf: {} unknowns, {} constraints, pitch = {:?}",
        leaf.unknowns, leaf.constraints, leaf.pitches
    );

    let mut group = c.benchmark_group("compaction/flat");
    for n in [2usize, 4, 8, 16] {
        let boxes = tiled(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &boxes, |b, boxes| {
            b.iter(|| {
                let (sys, _) = generate(boxes, &tech.rules, Method::Visibility);
                black_box(solve(&sys, EdgeOrder::Sorted).unwrap().extent())
            })
        });
    }
    group.finish();

    c.bench_function("compaction/leaf-once", |b| {
        b.iter(|| {
            let out = compact(&[leaf_cell()], &interfaces, &tech.rules).unwrap();
            black_box(out.pitches)
        })
    });
}

criterion_group!(benches, bench_flat_vs_leaf);
criterion_main!(benches);
