//! Experiment E21 — incremental recompaction: change one leaf, pay for
//! one leaf.
//!
//! The workload is the 8×8 multiplier. The edit swaps one `goleft`
//! direction mask to `goright` inside the right register stack — a
//! one-leaf change of the assdirection personality. Three rows:
//!
//! * `cold`    — from-scratch `compact_chip` (leaf pass + hier pass),
//! * `edit`    — a session primed on the original chip recompacts the
//!   edited chip (each iteration clones the primed session, because the
//!   caches are content-addressed: recompacting the same edit twice in
//!   one session would be a pure cache hit and measure nothing),
//! * `noop`    — the primed session recompacts the *unchanged* chip (a
//!   pure replay; the floor of the session flow).
//!
//! Verified in-bench: the incremental result is **bit-identical** to the
//! cold result on the edited chip, the edit re-runs exactly two assembly
//! cells while the n² core array replays from the cache, and the no-op
//! run derives zero abstracts and emits zero constraints.

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::ChipCompaction;
use rsg_compact::incremental::CompactSession;
use rsg_compact::leaf::Parallelism;
use rsg_layout::{CellDefinition, CellId, CellTable, Instance, LayoutObject, Technology};
use std::hint::black_box;

/// `table` with the first `from` instance inside `host` re-pointed at
/// `to` — the one-mask edit.
fn swap_one_instance(table: &CellTable, host: &str, from: CellId, to: CellId) -> CellTable {
    let mut t = table.clone();
    let host_id = t.lookup(host).expect("host cell");
    let def = t.get(host_id).expect("host def");
    let mut edited = CellDefinition::new(def.name());
    let mut swapped = false;
    for obj in def.objects() {
        match obj {
            LayoutObject::Instance(i) => {
                let mut cell = i.cell;
                if !swapped && cell == from {
                    cell = to;
                    swapped = true;
                }
                edited.add_instance(Instance::new(cell, i.point_of_call, i.orientation));
            }
            LayoutObject::Box { layer, rect } => {
                edited.add_box(*layer, *rect);
            }
            LayoutObject::Label { text, at } => {
                edited.add_label(text.clone(), *at);
            }
        }
    }
    assert!(swapped, "no `from` instance found in `{host}`");
    *t.get_mut(host_id).unwrap() = edited;
    t
}

fn assert_same_chip(inc: &ChipCompaction, cold: &ChipCompaction) {
    assert_eq!(inc.leaf, cold.leaf, "leaf-pass results diverged");
    assert_eq!(inc.chip.cells.len(), cold.chip.cells.len());
    for ((n_inc, o_inc), (n_cold, o_cold)) in inc.chip.cells.iter().zip(&cold.chip.cells) {
        assert_eq!(n_inc, n_cold);
        assert_eq!(o_inc.cell, o_cold.cell, "geometry of `{n_inc}` diverged");
        assert_eq!(
            o_inc.pitches, o_cold.pitches,
            "pitches of `{n_inc}` diverged"
        );
    }
}

fn bench_incremental(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let out = rsg_mult::generator::generate(8, 8).expect("generates");
    let table = out.rsg.cells();
    let goleft = table.lookup("goleft").expect("goleft mask");
    let goright = table.lookup("goright").expect("goright mask");
    let edited = swap_one_instance(table, "rightregs", goleft, goright);

    // Prime one session on the original chip; every `edit`/`noop`
    // iteration starts from a clone of this snapshot.
    let mut primed = CompactSession::new();
    rsg_mult::compactor::compact_chip_session(
        &mut primed,
        table,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Serial,
    )
    .expect("primes");

    // Correctness gate: incremental == cold on the edited chip, and the
    // reuse counters show the one-leaf economics.
    let cold_edit = rsg_mult::compactor::compact_chip(
        &edited,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Serial,
    )
    .expect("cold compacts");
    let mut check = primed.clone();
    let inc_edit = rsg_mult::compactor::compact_chip_session(
        &mut check,
        &edited,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Serial,
    )
    .expect("incremental compacts");
    assert_same_chip(&inc_edit, &cold_edit);
    let s = check.last_stats();
    assert_eq!(s.leaf_hits, 2, "library jobs untouched");
    assert_eq!(s.cells_compacted, 2, "only `rightregs` and the top re-run");
    assert_eq!(
        s.cell_hits, 3,
        "the 8×8 array and both register rows replay"
    );
    println!(
        "edit: {} of {} cells recompacted, {} pairs reused, {} constraints copied vs {} emitted, {} sweep-memo hits",
        s.cells_compacted,
        s.cells_seen,
        s.pairs_reused,
        s.constraints_reused,
        s.constraints_emitted,
        s.sweep_memo_hits,
    );
    let mut check = primed.clone();
    rsg_mult::compactor::compact_chip_session(
        &mut check,
        table,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Serial,
    )
    .expect("noop compacts");
    let s = check.last_stats();
    assert_eq!(s.cells_compacted, 0, "no-op edit recompacts nothing");
    assert_eq!(s.abstracts_derived, 0, "no-op edit re-flattens nothing");
    assert_eq!(s.constraints_emitted, 0, "no-op edit re-emits nothing");
    assert_eq!(s.leaf_jobs, 0, "no-op edit re-solves no library job");

    let mut group = c.benchmark_group("incremental/mult8");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let chip = rsg_mult::compactor::compact_chip(
                &edited,
                out.top,
                &tech.rules,
                &solver,
                Parallelism::Serial,
            )
            .expect("cold compacts");
            black_box(chip.chip.cells.len())
        })
    });
    group.bench_function("edit", |b| {
        b.iter(|| {
            let mut session = primed.clone();
            let chip = rsg_mult::compactor::compact_chip_session(
                &mut session,
                &edited,
                out.top,
                &tech.rules,
                &solver,
                Parallelism::Serial,
            )
            .expect("incremental compacts");
            black_box(chip.chip.cells.len())
        })
    });
    group.bench_function("noop", |b| {
        b.iter(|| {
            let mut session = primed.clone();
            let chip = rsg_mult::compactor::compact_chip_session(
                &mut session,
                table,
                out.top,
                &tech.rules,
                &solver,
                Parallelism::Serial,
            )
            .expect("noop compacts");
            black_box(chip.chip.cells.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
