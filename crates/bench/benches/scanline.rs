//! Experiment E15 — Figs 6.4–6.7: the band scan generates constraints for
//! hidden edges (quadratic blow-up on fragmented layouts, and
//! overconstraint); the visibility scan suppresses them. The y-axis sweep
//! runs on the same geometry with no transposed copy, so its cost tracks
//! the x sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_compact::par::Parallelism;
use rsg_compact::scanline::{generate, generate_with, Method, Prune};
use rsg_geom::{Axis, Rect};
use rsg_layout::{Layer, Technology};
use std::hint::black_box;

/// Fig 6.5's fragmented bus: n abutting diffusion fragments.
fn fragmented(n: usize) -> Vec<(Layer, Rect)> {
    (0..n as i64)
        .map(|k| {
            (
                Layer::Diffusion,
                Rect::from_coords(10 * k, 0, 10 * (k + 1), 4),
            )
        })
        .collect()
}

fn bench_methods(c: &mut Criterion) {
    let rules = Technology::mead_conway(2).rules.clone();

    // Constraint-count table (the measurable overconstraint). The band
    // rows run with `Prune::Keep`: E15 measures the band scan's raw
    // hidden-edge emission, which the default transitive reduction
    // (E24) would otherwise absorb.
    for n in [8usize, 16, 32, 64] {
        let boxes = fragmented(n);
        let (band, _) = generate_with(
            &boxes,
            &rules,
            Method::Band,
            Axis::X,
            Prune::Keep,
            Parallelism::Serial,
        );
        let (vis, _) = generate(&boxes, &rules, Method::Visibility, Axis::X);
        println!(
            "fragmented bus n={n}: band={} constraints, visibility={}",
            band.constraints().len(),
            vis.constraints().len()
        );
    }

    let mut group = c.benchmark_group("scanline");
    for n in [8usize, 32, 64] {
        let boxes = fragmented(n);
        group.bench_with_input(BenchmarkId::new("band", n), &boxes, |b, boxes| {
            b.iter(|| {
                black_box(
                    generate_with(
                        boxes,
                        &rules,
                        Method::Band,
                        Axis::X,
                        Prune::Keep,
                        Parallelism::Serial,
                    )
                    .0
                    .constraints()
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("visibility", n), &boxes, |b, boxes| {
            b.iter(|| {
                black_box(
                    generate(boxes, &rules, Method::Visibility, Axis::X)
                        .0
                        .constraints()
                        .len(),
                )
            })
        });
        // The axis-generic sweep: same boxes, perpendicular direction,
        // zero-copy (the retired transpose path rewrote every rect).
        group.bench_with_input(BenchmarkId::new("visibility-y", n), &boxes, |b, boxes| {
            b.iter(|| {
                black_box(
                    generate(boxes, &rules, Method::Visibility, Axis::Y)
                        .0
                        .constraints()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
