//! Experiment E25 — compaction-as-a-service: what a store hit is worth.
//!
//! The workload is the full-adder PLA chip job (leaf library + hier
//! pass) submitted to a long-lived [`rsg_serve::JobQueue`]. Three rows:
//!
//! * `cold` — a fresh queue over a fresh store directory every
//!   iteration: service startup + key derivation + full solve + atomic
//!   persist (what the first-ever submission of a design costs),
//! * `warm` — the same content resubmitted against a primed store; each
//!   iteration pays key derivation + disk read + payload validation
//!   only,
//! * `edit` — one product term added to the personality, submitted to a
//!   queue whose worker session is warm on the original; the edited
//!   chip is a different content key, misses the store (its entry is
//!   deleted per iteration), and re-solves through the persistent
//!   session — the service-side incremental path.
//!
//! Verified in-bench: the warm run performs **zero** solver invocations
//! (`ServeMetrics::solves` stays 0 across every warm iteration) and its
//! CIF is **byte-identical** to the cold result; the edited chip maps
//! to a different store key than the original.

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_layout::Technology;
use rsg_serve::{JobQueue, JobSpec, ServeConfig, Store};
use std::hint::black_box;

fn pla_spec(rows: &[&str]) -> JobSpec {
    let personality = rsg_hpla::Personality::parse(rows, 3, 2).expect("personality parses");
    let chip = rsg_hpla::rsg_pla(&personality, "fa_pla").expect("pla generates");
    JobSpec::Chip {
        table: chip.rsg.cells().clone(),
        top: chip.top,
        library: rsg_hpla::compactor::library_jobs().expect("library jobs"),
    }
}

fn bench_serve(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let store_root = std::env::temp_dir().join(format!("rsg-bench-serve-{}", std::process::id()));
    std::fs::remove_dir_all(&store_root).ok();

    let original = pla_spec(&[
        "100 10", "010 10", "001 10", "111 10", // sum minterms
        "11- 01", "1-1 01", // carry, one term missing
    ]);
    let edited = pla_spec(&[
        "100 10", "010 10", "001 10", "111 10", //
        "11- 01", "1-1 01", "-11 01", // the missing carry term
    ]);

    let queue =
        JobQueue::new(&store_root, ServeConfig::new(tech.rules.clone())).expect("queue starts");

    // Prime: learn the content keys and pin the cold result.
    let cold_out = queue
        .fetch(queue.submit(original.clone()).expect("submit"))
        .expect("cold job succeeds");
    let edit_out = queue
        .fetch(queue.submit(edited.clone()).expect("submit"))
        .expect("edited job succeeds");
    assert_ne!(
        cold_out.key, edit_out.key,
        "one added product term must change the content key"
    );
    let edit_entry = {
        let store = Store::open(&store_root).expect("store reopens");
        store.path_of(edit_out.key)
    };

    let mut group = c.benchmark_group("serve");

    group.bench_function("cold", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let dir = store_root.join(format!("cold-{n}"));
            let fresh = JobQueue::new(&dir, ServeConfig::new(tech.rules.clone()))
                .expect("fresh queue starts");
            let out = fresh
                .fetch(fresh.submit(original.clone()).expect("submit"))
                .expect("cold job succeeds");
            assert!(!out.from_store, "an empty store cannot hit");
            assert_eq!(
                out.result.artifacts[0].cif, cold_out.result.artifacts[0].cif,
                "every cold run must agree byte for byte"
            );
            drop(fresh);
            std::fs::remove_dir_all(&dir).ok();
            black_box(out)
        });
    });

    // Re-prime after the cold row left the entry in place, then pin the
    // warm contract: zero solves, byte-identical CIF.
    let warm_queue = JobQueue::new(&store_root, ServeConfig::new(tech.rules.clone()))
        .expect("fresh queue over the primed store");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let out = warm_queue
                .fetch(warm_queue.submit(original.clone()).expect("submit"))
                .expect("warm job succeeds");
            assert!(out.from_store, "warm resubmission must hit the store");
            assert_eq!(
                out.result.artifacts[0].cif, cold_out.result.artifacts[0].cif,
                "warm CIF must be byte-identical to the cold run"
            );
            black_box(out)
        });
    });
    let warm_metrics = warm_queue.metrics();
    assert_eq!(
        warm_metrics.solves, 0,
        "warm rows must be served with zero solver invocations \
         (served {} jobs from the store)",
        warm_metrics.served_from_store
    );
    assert!(warm_metrics.served_from_store > 0);

    group.bench_function("edit", |b| {
        b.iter(|| {
            std::fs::remove_file(&edit_entry).ok();
            let out = queue
                .fetch(queue.submit(edited.clone()).expect("submit"))
                .expect("edited job succeeds");
            assert!(!out.from_store, "the edit is new content — it must solve");
            black_box(out)
        });
    });

    group.finish();
    drop(queue);
    drop(warm_queue);
    std::fs::remove_dir_all(&store_root).ok();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
