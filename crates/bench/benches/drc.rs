//! Experiment E16 — DRC scaling, sweep vs pairwise.
//!
//! `drc::check` sweeps a `GeomIndex`: each box visits only neighbours
//! within its rule distance along the sweep axis, O(n log n + k). The
//! retired all-pairs reference (`drc::check_pairwise`) visits every
//! pair, O(n²). On a 2-D tiled layout the pairwise cost quadruples per
//! size doubling while the sweep stays near-linear; the equivalence
//! proptests in `crates/layout/tests/drc_equivalence.rs` prove both
//! return the identical violation list.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_geom::{Rect, Vector};
use rsg_layout::{drc, Layer, Technology};
use std::hint::black_box;

/// A DRC-clean 4-box tile (poly, metal, diffusion at legal spacings).
fn tile() -> Vec<(Layer, Rect)> {
    vec![
        (Layer::Poly, Rect::from_coords(0, 0, 4, 24)),
        (Layer::Poly, Rect::from_coords(8, 0, 12, 24)),
        (Layer::Metal1, Rect::from_coords(18, 2, 26, 22)),
        (Layer::Diffusion, Rect::from_coords(32, 4, 40, 20)),
    ]
}

/// The tile replicated on a 2-D grid until `n` boxes exist.
fn tiled(n: usize) -> Vec<(Layer, Rect)> {
    let tile = tile();
    let per_row = ((n / tile.len()) as f64).sqrt().ceil() as i64;
    let mut out = Vec::with_capacity(n);
    'fill: for row in 0.. {
        for col in 0..per_row {
            let shift = Vector::new(col * 48, row * 32);
            for &(l, r) in &tile {
                if out.len() == n {
                    break 'fill;
                }
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

fn bench_drc(c: &mut Criterion) {
    let rules = Technology::mead_conway(2).rules.clone();

    // Correctness gate once per run: identical outputs at every size.
    for n in [64usize, 256, 1024] {
        let boxes = tiled(n);
        assert_eq!(
            drc::check(&boxes, &rules),
            drc::check_pairwise(&boxes, &rules),
            "sweep diverged from pairwise at n={n}"
        );
    }

    let mut group = c.benchmark_group("drc");
    for n in [64usize, 256, 1024] {
        let boxes = tiled(n);
        group.bench_with_input(BenchmarkId::new("pairwise", n), &boxes, |b, boxes| {
            b.iter(|| black_box(drc::check_pairwise(boxes, &rules).len()))
        });
        group.bench_with_input(BenchmarkId::new("sweep", n), &boxes, |b, boxes| {
            b.iter(|| black_box(drc::check(boxes, &rules).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drc);
criterion_main!(benches);
