//! Experiment E19 — hierarchical vs flatten-then-compact.
//!
//! The paper's headline economics: an assembled chip is compacted from
//! its instances and their interface abstracts (`compact_chip` = leaf
//! pass + hier pass), never from flattened mask data. The baseline is
//! what a flat compactor must do instead: flatten the hierarchy and run
//! the alternating x/y engine over every mask box.
//!
//! Both paths are verified in-bench: the hier output flattens DRC-clean,
//! and the harness prints the size of each problem (instance clusters +
//! abstract boxes vs flat boxes) so the reduction is visible next to the
//! wall-clock numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_compact::backend::BellmanFord;
use rsg_compact::engine;
use rsg_compact::leaf::Parallelism;
use rsg_hpla::Personality;
use rsg_layout::{drc, CellId, CellTable, Technology};
use std::hint::black_box;

/// An n-input, n-product, n-output personality with a dense diagonal
/// pattern — every crosspoint kind appears.
fn personality(n: usize) -> Personality {
    let rows: Vec<String> = (0..n)
        .map(|p| {
            let ands: String = (0..n)
                .map(|i| match (p + i) % 3 {
                    0 => '1',
                    1 => '0',
                    _ => '-',
                })
                .collect();
            let ors: String = (0..n)
                .map(|o| if (p + o) % 2 == 0 { '1' } else { '0' })
                .collect();
            format!("{ands} {ors}")
        })
        .collect();
    let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
    Personality::parse(&refs, n, n).expect("valid personality")
}

/// The flatten-then-compact baseline: one hierarchy walk, then the
/// alternating flat engine over every mask box.
fn flatten_and_compact(table: &CellTable, top: CellId) -> usize {
    let tech = Technology::mead_conway(2);
    let flat = rsg_layout::flatten(table, top).expect("flattens");
    let boxes = flat.layer_rects().to_vec();
    let out = engine::compact_xy(&boxes, &tech.rules, &BellmanFord::SORTED, 10).expect("compacts");
    out.boxes.len()
}

fn bench_pla(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let mut group = c.benchmark_group("hier/pla");
    for n in [4usize, 8] {
        let p = personality(n);
        let pla = rsg_hpla::rsg_pla(&p, "pla").expect("generates");

        // Correctness gate + problem-size table.
        let out = rsg_hpla::compactor::compact_chip(
            pla.rsg.cells(),
            pla.top,
            &tech.rules,
            &BellmanFord::SORTED,
            Parallelism::Serial,
        )
        .expect("chip compacts");
        let after = rsg_layout::flatten(&out.chip.table, out.chip.top).expect("flattens");
        assert!(
            drc::check_flat(&after, &tech.rules).is_empty(),
            "hier output must be DRC-clean"
        );
        let top_outcome = &out.chip.cells.last().expect("top compacted").1;
        println!(
            "pla n={n}: hier moves {} clusters over {} abstract boxes (vs {} flat boxes)",
            top_outcome.report.sweeps.first().map_or(0, |s| s.clusters),
            top_outcome
                .report
                .sweeps
                .first()
                .map_or(0, |s| s.abstract_boxes),
            top_outcome.report.flat_boxes,
        );

        group.bench_with_input(BenchmarkId::new("chip", n), &n, |b, _| {
            b.iter(|| {
                let out = rsg_hpla::compactor::compact_chip(
                    pla.rsg.cells(),
                    pla.top,
                    &tech.rules,
                    &BellmanFord::SORTED,
                    Parallelism::Serial,
                )
                .expect("chip compacts");
                black_box(out.chip.cells.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("flatten", n), &n, |b, _| {
            b.iter(|| black_box(flatten_and_compact(pla.rsg.cells(), pla.top)))
        });
    }
    group.finish();
}

fn bench_mult(c: &mut Criterion) {
    let tech = Technology::mead_conway(2);
    let mut group = c.benchmark_group("hier/mult");
    for n in [4usize, 8] {
        let out = rsg_mult::generator::generate(n, n).expect("generates");

        let chip = rsg_mult::compactor::compact_chip(
            out.rsg.cells(),
            out.top,
            &tech.rules,
            &BellmanFord::SORTED,
            Parallelism::Serial,
        )
        .expect("chip compacts");
        let after = rsg_layout::flatten(&chip.chip.table, chip.chip.top).expect("flattens");
        assert!(
            drc::check_flat(&after, &tech.rules).is_empty(),
            "hier output must be DRC-clean"
        );
        let total_flat: usize = chip
            .chip
            .cells
            .iter()
            .map(|(_, o)| o.report.flat_boxes)
            .max()
            .unwrap_or(0);
        println!(
            "mult n={n}: {} assembly levels compacted hierarchically; largest level summarizes {total_flat} flat boxes",
            chip.chip.cells.len(),
        );

        group.bench_with_input(BenchmarkId::new("chip", n), &n, |b, _| {
            b.iter(|| {
                let chip = rsg_mult::compactor::compact_chip(
                    out.rsg.cells(),
                    out.top,
                    &tech.rules,
                    &BellmanFord::SORTED,
                    Parallelism::Serial,
                )
                .expect("chip compacts");
                black_box(chip.chip.cells.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("flatten", n), &n, |b, _| {
            b.iter(|| black_box(flatten_and_compact(out.rsg.cells(), out.top)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pla, bench_mult);
criterion_main!(benches);
