//! Experiment E10 — §1.2.2: the RSG generates the same PLAs HPLA's
//! relocation scheme does (identical geometry, cross-checked in tests);
//! this bench compares the cost of the general mechanism against the
//! hard-coded baseline, and exercises the decoder the baseline cannot
//! express.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_hpla::{relocation_pla, rsg_decoder, rsg_pla, Personality};
use std::hint::black_box;

/// A synthetic n-input / n-output / 2n-product personality.
fn synth(n: usize) -> Personality {
    let rows: Vec<String> = (0..2 * n)
        .map(|p| {
            let cube: String = (0..n)
                .map(|i| match (p + i) % 3 {
                    0 => '1',
                    1 => '0',
                    _ => '-',
                })
                .collect();
            let outs: String = (0..n)
                .map(|o| if (p + o) % 2 == 0 { '1' } else { '0' })
                .collect();
            format!("{cube} {outs}")
        })
        .collect();
    let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
    Personality::parse(&refs, n, n).unwrap()
}

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("pla");
    for n in [4usize, 8, 16] {
        let p = synth(n);
        group.bench_with_input(BenchmarkId::new("rsg", n), &p, |b, p| {
            b.iter(|| black_box(rsg_pla(p, "pla").unwrap().top))
        });
        group.bench_with_input(BenchmarkId::new("relocation", n), &p, |b, p| {
            b.iter(|| black_box(relocation_pla(p, "pla_relo").unwrap().1))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decoder");
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("rsg", n), &n, |b, &n| {
            b.iter(|| black_box(rsg_decoder(n, "dec").unwrap().top))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pla);
criterion_main!(benches);
