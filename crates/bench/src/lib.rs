//! Synthetic mega-chip stress workloads (experiment E23).
//!
//! The real generators in this workspace (the PLA, the multiplier) top
//! out around 10⁴ flat boxes; the multi-core benchmarks need workloads
//! two orders larger with *known-good* geometry, so that an empty DRC
//! report and serial≡parallel identity are meaningful assertions rather
//! than artifacts. Both variants are DRC-clean by construction:
//!
//! * [`megachip_flat`] — a lattice of isolated [`TILE_BOX`]-sized
//!   squares on a [`TILE_PITCH`] grid (gap ≥ every
//!   `Technology::mead_conway(2)` spacing rule). Every box is separate
//!   material, which is exactly what stresses the per-layer DRC sweep.
//! * [`megachip_hier`] — the same mask layers organized as a four-deep
//!   *wire-bundle* hierarchy (tile → row → block → chip): each tile
//!   carries four horizontal bars (one per layer) built from **abutting**
//!   segments, and tiles/rows butt against each other so the bars run
//!   continuously. Touching same-layer boxes are connected material —
//!   exempt from spacing rules and welded by the compactor — so the
//!   interface abstracts collapse to a handful of profile rects per
//!   definition and the hierarchy walk's cost stays proportional to the
//!   *definition* count while the flattened box count reaches 10⁶. The
//!   definitions per level differ in how the bars are segmented (not in
//!   the mask image), giving the dependency-level scheduler
//!   [`VARIANTS`]-wide waves of distinct compactions.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{CellDefinition, CellId, CellTable, Instance, Layer, LayoutError};

/// Side of every flat-lattice box — at least the largest
/// `mead_conway(2)` minimum width (Metal2's 4λ = 8).
pub const TILE_BOX: i64 = 8;

/// Flat-lattice pitch: [`TILE_BOX`] plus a gap (16) at least as large
/// as every `mead_conway(2)` spacing rule, so any two lattice boxes are
/// clean regardless of their layers.
pub const TILE_PITCH: i64 = 24;

/// Mask layers cycled across the lattice and assigned one per bar row
/// in the hierarchical variant.
const LAYERS: [Layer; 4] = [Layer::Metal1, Layer::Poly, Layer::Diffusion, Layer::Metal2];

/// A flat box lattice of at least `target` boxes, on a square-ish grid.
/// DRC-clean by construction (every gap is `TILE_PITCH - TILE_BOX`).
pub fn megachip_flat(target: usize) -> Vec<(Layer, Rect)> {
    let mut side = 1usize;
    while side * side < target {
        side += 1;
    }
    let mut boxes = Vec::with_capacity(side * side);
    for iy in 0..side {
        for ix in 0..side {
            let x = ix as i64 * TILE_PITCH;
            let y = iy as i64 * TILE_PITCH;
            boxes.push((
                LAYERS[(ix + iy) % LAYERS.len()],
                Rect::from_coords(x, y, x + TILE_BOX, y + TILE_BOX),
            ));
        }
    }
    boxes
}

/// A generated hierarchical mega-chip (see [`megachip_hier`]).
pub struct MegaChip {
    /// The cell table holding every definition.
    pub table: CellTable,
    /// The chip-level cell.
    pub top: CellId,
    /// Flattened box count (≥ the requested target).
    pub boxes: usize,
}

/// Distinct definitions per hierarchy level — the fan-out width the
/// dependency-level scheduler sees at the row and block levels.
pub const VARIANTS: usize = 8;

/// Bar thickness (= the largest minimum width, Metal2's 8).
const BAR: i64 = 8;
/// Vertical pitch between bar rows: thickness + a 16 gap ≥ every
/// spacing rule.
const BAR_PITCH: i64 = 24;
/// Bars per tile — one per entry of [`LAYERS`].
const BARS: usize = 4;
/// Tile width; also the horizontal abutment pitch, so bars run
/// continuously across a row of tiles.
const TILE_W: i64 = 32;
/// Tile height; also the vertical abutment pitch of rows inside a
/// block (the 16 gap between the last bar and the next row's first bar
/// is preserved: 96 − 80 = 16).
const TILE_H: i64 = BAR_PITCH * BARS as i64;

/// How each variant splits a [`TILE_W`]-wide bar into abutting
/// segments. Every segment is ≥ 8 (the largest minimum width), and the
/// segments of one bar always cover exactly `0..TILE_W`, so every
/// variant produces the *same mask image* — only the box structure
/// (and therefore the content hash) differs.
const SPLITS: [&[i64]; VARIANTS] = [
    &[8, 8, 8, 8],
    &[16, 8, 8],
    &[8, 16, 8],
    &[8, 8, 16],
    &[16, 16],
    &[24, 8],
    &[8, 24],
    &[32],
];

const LEAVES_PER_ROW: usize = 32;
const ROWS_PER_BLOCK: usize = 32;

/// Builds the wire-bundle mega-chip hierarchy with at least `target`
/// flattened boxes: [`VARIANTS`] distinct tiles (four bars of abutting
/// segments), [`VARIANTS`] distinct rows of 32 abutted tiles,
/// [`VARIANTS`] distinct blocks of 32 abutted rows, and a chip stacking
/// however many blocks reach `target`. Every level offsets which child
/// variants it references, so no two same-level definitions hash alike
/// and the hierarchy walk has real per-level width.
///
/// # Errors
///
/// Propagates table-construction failures ([`LayoutError`]); the
/// generated names are unique and coordinates stay far below the
/// ingest budget, so this is theoretical for any reachable `target`.
pub fn megachip_hier(target: usize) -> Result<MegaChip, LayoutError> {
    let mut table = CellTable::new();
    let mut leaf_ids = Vec::with_capacity(VARIANTS);
    let mut leaf_boxes = Vec::with_capacity(VARIANTS);
    for v in 0..VARIANTS {
        let mut def = CellDefinition::new(format!("tile{v}"));
        let mut count = 0usize;
        for (k, &layer) in LAYERS.iter().enumerate() {
            let y = k as i64 * BAR_PITCH;
            let mut x = 0i64;
            for &w in SPLITS[(v + k) % VARIANTS] {
                def.add_box(layer, Rect::from_coords(x, y, x + w, y + BAR));
                x += w;
                count += 1;
            }
        }
        leaf_ids.push(table.insert(def)?);
        leaf_boxes.push(count);
    }
    let mut row_ids = Vec::with_capacity(VARIANTS);
    let mut row_boxes = Vec::with_capacity(VARIANTS);
    for r in 0..VARIANTS {
        let mut def = CellDefinition::new(format!("row{r}"));
        let mut count = 0usize;
        for i in 0..LEAVES_PER_ROW {
            let v = (r + i) % VARIANTS;
            def.add_instance(Instance::new(
                leaf_ids[v],
                Point::new(i as i64 * TILE_W, 0),
                Orientation::NORTH,
            ));
            count += leaf_boxes[v];
        }
        row_ids.push(table.insert(def)?);
        row_boxes.push(count);
    }
    let mut block_ids = Vec::with_capacity(VARIANTS);
    let mut block_boxes = Vec::with_capacity(VARIANTS);
    for b in 0..VARIANTS {
        let mut def = CellDefinition::new(format!("block{b}"));
        let mut count = 0usize;
        for j in 0..ROWS_PER_BLOCK {
            let r = (b + j) % VARIANTS;
            def.add_instance(Instance::new(
                row_ids[r],
                Point::new(0, j as i64 * TILE_H),
                Orientation::NORTH,
            ));
            count += row_boxes[r];
        }
        block_ids.push(table.insert(def)?);
        block_boxes.push(count);
    }
    let block_h = ROWS_PER_BLOCK as i64 * TILE_H;
    let mut top = CellDefinition::new("megachip");
    let mut boxes = 0usize;
    let mut g = 0usize;
    while boxes < target || g == 0 {
        let b = g % VARIANTS;
        top.add_instance(Instance::new(
            block_ids[b],
            Point::new(0, g as i64 * block_h),
            Orientation::NORTH,
        ));
        boxes += block_boxes[b];
        g += 1;
    }
    let top = table.insert(top)?;
    Ok(MegaChip { table, top, boxes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_layout::{drc, flatten, Technology};

    #[test]
    fn flat_lattice_hits_target_and_is_clean() {
        let tech = Technology::mead_conway(2);
        let boxes = megachip_flat(10_000);
        assert!(boxes.len() >= 10_000);
        let flat = rsg_layout::FlatLayout::from_boxes(
            boxes
                .iter()
                .map(|&(layer, rect)| rsg_layout::FlatBox {
                    layer,
                    rect,
                    depth: 0,
                })
                .collect(),
        );
        assert!(drc::check_flat(&flat, &tech.rules).is_empty());
    }

    #[test]
    fn hier_lattice_hits_target_and_is_clean() {
        let tech = Technology::mead_conway(2);
        let chip = megachip_hier(50_000).unwrap();
        assert!(chip.boxes >= 50_000);
        let flat = flatten(&chip.table, chip.top).unwrap();
        assert_eq!(flat.len(), chip.boxes);
        assert!(drc::check_flat(&flat, &tech.rules).is_empty());
    }

    #[test]
    fn hier_variants_share_one_mask_image() {
        // Every tile variant must paint the same four bars — distinct
        // content hashes, identical material — or the
        // DRC-clean-by-construction argument (and the profile collapse)
        // would not hold. Segments never overlap, so summing areas per
        // layer checks coverage exactly.
        let chip = megachip_hier(1).unwrap();
        for v in 0..VARIANTS {
            let id = chip.table.lookup(&format!("tile{v}")).unwrap();
            let flat = flatten(&chip.table, id).unwrap();
            for &layer in &LAYERS {
                let area: i64 = flat
                    .layer_rects()
                    .iter()
                    .filter(|&&(l, _)| l == layer)
                    .map(|&(_, r)| r.area())
                    .sum();
                assert_eq!(area, TILE_W * BAR, "tile{v} {layer:?} bar coverage");
            }
        }
    }
}
