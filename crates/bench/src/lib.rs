pub fn bench_helper_placeholder() {}
