//! E24 regression guard: generated-constraint counts must not creep
//! back above the recorded ceilings.
//!
//! The ceilings live in `BENCH_constraint_ceilings.json` beside
//! `BENCH_compaction.json`: the pruned constraint count of the E13 8×8
//! tiled array and of the E23 megachip flat lattice at 10⁵ boxes. Both
//! workloads are deterministic, so the recorded values are exact — any
//! increase means a generator or prune regression and fails CI (wired
//! into ci.yml next to the megachip smoke). Run with
//! `cargo test --release -p rsg-bench --test constraint_ceilings`.

use rsg_bench::megachip_flat;
use rsg_compact::par::Parallelism;
use rsg_compact::scanline::{generate_with, Method, Prune};
use rsg_geom::{Axis, Rect, Vector};
use rsg_layout::{Layer, Technology};

/// Reads one `"key": <integer>` value out of the ceilings JSON. The
/// container has no JSON dependency, and the file is flat enough that
/// a keyed scan is exact.
fn ceiling(key: &str) -> usize {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_constraint_ceilings.json"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("key {key:?} missing from {path}"));
    let rest = &text[at + needle.len()..];
    let digits: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits
        .parse()
        .unwrap_or_else(|e| panic!("key {key:?} is not an integer: {e}"))
}

/// The E13 bench cell tiled n×n at its sample pitch (the layout behind
/// the recorded `flat_tiled_array` rows).
fn tiled(n: usize) -> Vec<(Layer, Rect)> {
    let bars = [
        (Layer::Poly, Rect::from_coords(2, 0, 8, 30)),
        (Layer::Metal1, Rect::from_coords(16, 5, 28, 25)),
        (Layer::Poly, Rect::from_coords(34, 0, 38, 30)),
    ];
    let mut out = Vec::new();
    for row in 0..n as i64 {
        for col in 0..n as i64 {
            let shift = Vector::new(col * 48, row * 36);
            for (l, r) in bars {
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

fn pruned_count(boxes: &[(Layer, Rect)]) -> usize {
    let rules = &Technology::mead_conway(2).rules;
    let (sys, _) = generate_with(
        boxes,
        rules,
        Method::Visibility,
        Axis::X,
        Prune::Apply,
        Parallelism::Serial,
    );
    sys.constraints().len()
}

#[test]
fn tiled_8x8_stays_under_recorded_ceiling() {
    let count = pruned_count(&tiled(8));
    let ceiling = ceiling("tiled_8x8_pruned");
    assert!(
        count <= ceiling,
        "8x8 tiled-array pruned constraint count regressed: {count} > recorded ceiling {ceiling}"
    );
}

#[test]
fn megachip_flat_100k_stays_under_recorded_ceiling() {
    let boxes = megachip_flat(100_000);
    let count = pruned_count(&boxes);
    let ceiling = ceiling("megachip_flat_100k_pruned");
    assert!(
        count <= ceiling,
        "megachip flat (n = {}) pruned constraint count regressed: {count} > recorded ceiling {ceiling}",
        boxes.len()
    );
}
