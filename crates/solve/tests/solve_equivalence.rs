//! Equivalence and consistency proptests for the solving subsystem:
//!
//! * the one-pass topological solver ≡ sorted Bellman-Ford on random
//!   acyclic systems (positions bit-for-bit),
//! * warm-started solves ≡ cold solves bit-for-bit for *any* seed —
//!   the previous solution, a perturbed copy, or garbage,
//! * reported slack is consistent with `ConstraintSystem::violations`:
//!   slack ≥ 0 for every constraint ⇔ the candidate satisfies the
//!   system, and the negative-slack set is exactly the violation list,
//! * `critical_path` chains telescope: their weights sum to the pinned
//!   variable's position.

use proptest::prelude::*;
use rsg_solve::solver::{solve, solve_topo, solve_warm, EdgeOrder};
use rsg_solve::ConstraintSystem;

/// Random acyclic systems: a spine chain plus random forward edges
/// (forward edges can never create a cycle).
fn arb_acyclic() -> impl Strategy<Value = ConstraintSystem> {
    (
        2usize..40,
        proptest::collection::vec((0usize..40, 0usize..40, -5i64..25), 0..80),
    )
        .prop_map(|(n, extras)| {
            let mut s = ConstraintSystem::new();
            let vars: Vec<_> = (0..n).map(|k| s.add_var(k as i64 * 7)).collect();
            for w in vars.windows(2) {
                s.require(w[0], w[1], 3);
            }
            for (a, b, w) in extras {
                let (a, b) = (a % n, b % n);
                if a < b {
                    s.require(vars[a], vars[b], w);
                }
            }
            s
        })
}

/// Random feasible systems that may contain equality cycles — the shape
/// `require_exact` and folded interfaces produce.
fn arb_with_cycles() -> impl Strategy<Value = ConstraintSystem> {
    (
        2usize..30,
        proptest::collection::vec((0usize..30, 0usize..30, 0i64..20), 0..40),
        proptest::collection::vec((0usize..30, 1i64..15), 0..6),
    )
        .prop_map(|(n, extras, exacts)| {
            let mut s = ConstraintSystem::new();
            let vars: Vec<_> = (0..n).map(|k| s.add_var(k as i64 * 7)).collect();
            for w in vars.windows(2) {
                s.require(w[0], w[1], 3);
            }
            for (a, b, w) in extras {
                let (a, b) = (a % n, b % n);
                if a < b {
                    // Clamped so spanning edges never demand more than
                    // exact-pinned segments can provide (every spine
                    // step spans ≥ 3): the system stays feasible.
                    s.require(vars[a], vars[b], w.min(3 * (b - a) as i64));
                }
            }
            let mut pinned = vec![false; n];
            for (a, d) in exacts {
                let a = a % n;
                if a + 1 < n && !pinned[a] {
                    // Pin a spine step to exactly d ≥ 3 — a genuine
                    // two-cycle, the `require_exact` shape. One pin per
                    // step; two different distances would contradict.
                    pinned[a] = true;
                    s.require_exact(vars[a], vars[a + 1], d.max(3));
                }
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The topological solver returns exactly the Bellman-Ford least
    /// solution on every acyclic system, in one pass.
    #[test]
    fn topo_equals_sorted_bellman_ford(sys in arb_acyclic()) {
        let bf = solve(&sys, EdgeOrder::Sorted).unwrap();
        let topo = solve_topo(&sys).expect("spine+forward edges are acyclic");
        prop_assert_eq!(topo.positions(), bf.positions());
        prop_assert_eq!(topo.passes, 1);
    }

    /// Warm-starting from the cold answer is bit-for-bit identical and
    /// never needs more than the verification pass.
    #[test]
    fn warm_from_answer_is_identical_and_cheap(sys in arb_with_cycles()) {
        let cold = solve(&sys, EdgeOrder::Sorted).unwrap();
        let warm = solve_warm(&sys, EdgeOrder::Sorted, cold.positions()).unwrap();
        prop_assert_eq!(warm.positions(), cold.positions());
        prop_assert!(warm.passes <= cold.passes);
    }

    /// Warm-starting from an arbitrary seed — perturbed, negative, or
    /// wildly overshooting — still lands on the cold solution exactly.
    #[test]
    fn warm_from_any_seed_is_identical(
        sys in arb_with_cycles(),
        noise in proptest::collection::vec(-50i64..200, 30..31),
    ) {
        let cold = solve(&sys, EdgeOrder::Sorted).unwrap();
        let seed: Vec<i64> = cold
            .positions()
            .iter()
            .enumerate()
            .map(|(k, &p)| p + noise[k % noise.len()])
            .collect();
        let warm = solve_warm(&sys, EdgeOrder::Sorted, &seed).unwrap();
        prop_assert_eq!(warm.positions(), cold.positions());
        // Order never matters either.
        let warm_arb = solve_warm(&sys, EdgeOrder::Arbitrary, &seed).unwrap();
        prop_assert_eq!(warm_arb.positions(), cold.positions());
    }

    /// Slack signs agree with the violation list on arbitrary candidate
    /// vectors: slacks[k] < 0 exactly for the violated constraints, and
    /// an all-non-negative slack vector means no violations.
    #[test]
    fn slack_consistent_with_violations(
        sys in arb_with_cycles(),
        candidate in proptest::collection::vec(0i64..300, 30..31),
    ) {
        let pos: Vec<i64> = (0..sys.num_vars())
            .map(|k| candidate[k % candidate.len()])
            .collect();
        let slacks = sys.slacks(&pos, &[]);
        let violations = sys.violations(&pos, &[]);
        let negative: Vec<_> = sys
            .constraints()
            .iter()
            .zip(&slacks)
            .filter(|(_, &s)| s < 0)
            .map(|(c, _)| *c)
            .collect();
        prop_assert_eq!(&negative, &violations);
        prop_assert_eq!(slacks.iter().all(|&s| s >= 0), violations.is_empty());
        // A solved system always has all-non-negative slack.
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        prop_assert!(sol.slacks(&sys).iter().all(|&s| s >= 0));
    }

    /// Critical-path chains telescope: weights sum to the position of
    /// the pinned variable (least solutions ground out at 0).
    #[test]
    fn critical_path_telescopes(sys in arb_with_cycles()) {
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        for v in sys.vars() {
            let chain = sol.critical_path(&sys, v);
            let total: i64 = chain.iter().map(|c| c.weight).sum();
            prop_assert_eq!(total, sol.position(v), "var {:?}", v);
        }
    }
}
