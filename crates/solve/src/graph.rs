//! The CSR adjacency view of a [`ConstraintSystem`].
//!
//! §6.4.2 treats the constraint system as a graph — "the Bellman Ford
//! assigns to each vertex the lowest possible abscissa" — but the flat
//! `Vec<Constraint>` representation forced every solver to re-derive its
//! own view per solve: the sorted-edge order was re-sorted on each call,
//! and no solver could walk a variable's neighbours without scanning the
//! whole list. [`ConstraintGraph`] is the shared view: compressed sparse
//! rows in both directions (outgoing edges grouped by `from`, incoming by
//! `to`), the sorted-edge relaxation order computed once, and a
//! topological order of the variables when the graph is acyclic — the
//! precondition for the one-pass longest-path solver.
//!
//! The graph is built lazily by [`ConstraintSystem::graph`] and cached;
//! mutating the system invalidates the cache.

use crate::constraint::{Constraint, ConstraintSystem, PitchId, VarId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Clears and refills a buffer to `len` copies of `value`, keeping its
/// allocation — the build-reuse primitive of the sweep arenas.
fn reset<T: Clone>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// One directed edge of the constraint graph.
///
/// For an outgoing edge `other` is the `to` variable; for an incoming
/// edge it is the `from` variable. `weight` is the *constant* part of the
/// constraint weight — pitch terms, if any, are looked up through
/// `constraint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// The variable at the far end of the edge.
    pub other: VarId,
    /// Constant weight `w` of `x_to − x_from + Σcλ ≥ w`.
    pub weight: i64,
    /// Index of the originating constraint in
    /// [`ConstraintSystem::constraints`].
    pub constraint: u32,
}

/// Compressed-sparse-row adjacency of a [`ConstraintSystem`], shared by
/// every solver backend.
///
/// Parallel constraints — same `from`, same `to`, same pitch term — are
/// *deduplicated at build time*: only the strongest (maximum-weight)
/// member of each parallel class appears as a CSR edge or in the sorted
/// relaxation order, because a feasible candidate satisfying the maximum
/// satisfies every weaker parallel twin. [`ConstraintGraph::num_edges`]
/// therefore counts distinct edges, which can be fewer than
/// `sys.constraints().len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintGraph {
    num_vars: usize,
    out_offsets: Vec<u32>,
    out_edges: Vec<GraphEdge>,
    in_offsets: Vec<u32>,
    in_edges: Vec<GraphEdge>,
    /// Constraint indices in the paper's sorted-edge relaxation order
    /// (by the initial abscissa of the `from` variable); representatives
    /// only.
    sorted: Vec<u32>,
    /// Variables in topological order of the edge direction, when the
    /// graph (ignoring vacuous `w ≤ 0` self-loops) is acyclic.
    topo: Option<Vec<VarId>>,
    /// Per-constraint CSR slots (`constraint index → position in
    /// `out_edges` / `in_edges`), recorded during the fill so a weight
    /// can later be patched in place without rebuilding the rows. Only
    /// meaningful for representatives (`rep[k] == k`).
    out_slot: Vec<u32>,
    in_slot: Vec<u32>,
    /// Parallel-class representative per constraint: the index of the
    /// maximum-weight member (first such member on ties). `rep[k] == k`
    /// exactly when constraint `k` backs a CSR edge.
    rep: Vec<u32>,
    /// `true` when the constraint's parallel class has more than one
    /// member — the case where lowering a representative's weight could
    /// re-elect a twin and forces a rebuild.
    shared: Vec<bool>,
}

impl ConstraintGraph {
    /// Builds the CSR view of `sys`. O(V + E) plus the one-time
    /// sorted-order sort; called through [`ConstraintSystem::graph`],
    /// which caches the result.
    pub fn build(sys: &ConstraintSystem) -> ConstraintGraph {
        let empty = ConstraintGraph {
            num_vars: 0,
            out_offsets: Vec::new(),
            out_edges: Vec::new(),
            in_offsets: Vec::new(),
            in_edges: Vec::new(),
            sorted: Vec::new(),
            topo: None,
            out_slot: Vec::new(),
            in_slot: Vec::new(),
            rep: Vec::new(),
            shared: Vec::new(),
        };
        ConstraintGraph::build_reusing(sys, empty)
    }

    /// [`ConstraintGraph::build`] recycling the buffers of a retired
    /// graph — what the sweep arenas feed back so steady-state
    /// re-generation allocates nothing.
    pub fn build_reusing(sys: &ConstraintSystem, old: ConstraintGraph) -> ConstraintGraph {
        let n = sys.num_vars();
        let constraints = sys.constraints();
        let ConstraintGraph {
            mut out_offsets,
            mut out_edges,
            mut in_offsets,
            mut in_edges,
            mut sorted,
            mut out_slot,
            mut in_slot,
            mut rep,
            mut shared,
            ..
        } = old;

        // Parallel-edge classes: the representative is the first
        // maximum-weight member of each (from, to, pitch) class.
        type EdgeClass = (VarId, VarId, Option<(PitchId, i64)>);
        reset(&mut rep, constraints.len(), 0);
        reset(&mut shared, constraints.len(), false);
        let mut best: HashMap<EdgeClass, u32> = HashMap::with_capacity(constraints.len());
        for (k, c) in constraints.iter().enumerate() {
            match best.entry((c.from, c.to, c.pitch)) {
                Entry::Vacant(e) => {
                    e.insert(k as u32);
                }
                Entry::Occupied(mut e) => {
                    let b = *e.get() as usize;
                    shared[b] = true;
                    shared[k] = true;
                    if c.weight > constraints[b].weight {
                        e.insert(k as u32);
                    }
                }
            }
        }
        let mut edges = 0usize;
        for (k, c) in constraints.iter().enumerate() {
            rep[k] = best[&(c.from, c.to, c.pitch)];
            if rep[k] == k as u32 {
                edges += 1;
            }
        }

        reset(&mut out_offsets, n + 1, 0u32);
        reset(&mut in_offsets, n + 1, 0u32);
        for (k, c) in constraints.iter().enumerate() {
            if rep[k] == k as u32 {
                out_offsets[c.from.index() + 1] += 1;
                in_offsets[c.to.index() + 1] += 1;
            }
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }
        let dummy = GraphEdge {
            other: VarId::from_index(0),
            weight: 0,
            constraint: 0,
        };
        reset(&mut out_edges, edges, dummy);
        reset(&mut in_edges, edges, dummy);
        let mut out_fill = out_offsets.clone();
        let mut in_fill = in_offsets.clone();
        reset(&mut out_slot, constraints.len(), 0u32);
        reset(&mut in_slot, constraints.len(), 0u32);
        for (k, c) in constraints.iter().enumerate() {
            if rep[k] != k as u32 {
                continue;
            }
            let o = &mut out_fill[c.from.index()];
            out_slot[k] = *o;
            out_edges[*o as usize] = GraphEdge {
                other: c.to,
                weight: c.weight,
                constraint: k as u32,
            };
            *o += 1;
            let i = &mut in_fill[c.to.index()];
            in_slot[k] = *i;
            in_edges[*i as usize] = GraphEdge {
                other: c.from,
                weight: c.weight,
                constraint: k as u32,
            };
            *i += 1;
        }
        // Dominated members share their representative's slots, so slot
        // lookups through `rep` need no second indirection.
        for k in 0..constraints.len() {
            if rep[k] != k as u32 {
                out_slot[k] = out_slot[rep[k] as usize];
                in_slot[k] = in_slot[rep[k] as usize];
            }
        }

        sorted.clear();
        sorted.extend((0..constraints.len() as u32).filter(|&k| rep[k as usize] == k));
        sorted.sort_by_key(|&k| sys.initial(constraints[k as usize].from));

        let topo = topo_order(n, &out_offsets, &out_edges, &in_offsets);

        ConstraintGraph {
            num_vars: n,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            sorted,
            topo,
            out_slot,
            in_slot,
            rep,
            shared,
        }
    }

    /// Tries to absorb a weight change of one constraint in place.
    /// Returns `false` when the change can re-elect a different parallel
    /// representative, in which case [`ConstraintSystem::set_weight`]
    /// discards the graph and the next use rebuilds. The CSR rows, the
    /// sorted relaxation order (keyed by initial positions), and the
    /// topological order (keyed by the edge *set*) all survive a patched
    /// weight — self-loops crossing the vacuousness boundary are handled
    /// by the caller and never routed here.
    pub(crate) fn try_patch(&mut self, constraint: usize, weight: i64) -> bool {
        let r = self.rep[constraint] as usize;
        let slot = self.out_slot[r] as usize;
        let rep_weight = self.out_edges[slot].weight;
        if r == constraint {
            if weight >= rep_weight || !self.shared[constraint] {
                self.out_edges[slot].weight = weight;
                self.in_edges[self.in_slot[r] as usize].weight = weight;
                return true;
            }
            // A lowered representative may hand the class to a twin.
            return false;
        }
        // A dominated member only matters once it overtakes (or, for an
        // earlier index, ties) the representative.
        weight < rep_weight || (weight == rep_weight && constraint > r)
    }

    /// Number of variables (graph vertices).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of distinct edges — parallel constraints (same endpoints
    /// and pitch term) collapse to their maximum-weight representative,
    /// so this can be smaller than `sys.constraints().len()`.
    pub fn num_edges(&self) -> usize {
        self.out_edges.len()
    }

    /// Outgoing edges of `v` (constraints with `from == v`).
    pub fn outgoing(&self, v: VarId) -> &[GraphEdge] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Incoming edges of `v` (constraints with `to == v`).
    pub fn incoming(&self, v: VarId) -> &[GraphEdge] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_edges[lo..hi]
    }

    /// Constraint indices in sorted-edge relaxation order (§6.4.2's
    /// preliminary sort, computed once and shared by every solve).
    pub fn sorted_order(&self) -> &[u32] {
        &self.sorted
    }

    /// Variables in topological order when the graph is acyclic, else
    /// `None`. Vacuous self-loops (`from == to`, `w ≤ 0`) are ignored —
    /// they can never bind a longest path. `require_exact` pairs and
    /// interface-folded two-cycles make the graph cyclic.
    pub fn topo_order(&self) -> Option<&[VarId]> {
        self.topo.as_deref()
    }

    /// `true` when a topological order exists (the one-pass solver
    /// applies).
    pub fn is_acyclic(&self) -> bool {
        self.topo.is_some()
    }
}

/// Kahn's algorithm over the CSR rows; `None` on any non-vacuous cycle.
fn topo_order(
    n: usize,
    out_offsets: &[u32],
    out_edges: &[GraphEdge],
    in_offsets: &[u32],
) -> Option<Vec<VarId>> {
    let vacuous = |from: usize, e: &GraphEdge| e.other.index() == from && e.weight <= 0;
    let mut indegree = vec![0u32; n];
    for v in 0..n {
        indegree[v] = in_offsets[v + 1] - in_offsets[v];
    }
    // Self-loops with w ≤ 0 are stripped from the degree count; a
    // positive-weight self-loop is an unconditional positive cycle and
    // correctly leaves the graph cyclic.
    for v in 0..n {
        for e in &out_edges[out_offsets[v] as usize..out_offsets[v + 1] as usize] {
            if vacuous(v, e) {
                indegree[v] -= 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(VarId::from_index(v));
        for e in &out_edges[out_offsets[v] as usize..out_offsets[v + 1] as usize] {
            if vacuous(v, e) {
                continue;
            }
            let t = e.other.index();
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push(t);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// The chain of tight constraints that pins `v`: a path of zero-slack
/// constraints from a variable at position 0 up to `v`, in
/// source-to-`v` order. The sum of the chain's effective weights equals
/// `positions[v]` exactly.
///
/// Found by a BFS over tight edges forward from the zero set — the same
/// support sweep that proves a solution least — so every link's own
/// chain is grounded and zero-weight tight cycles (equality pairs)
/// cannot trap the walk. For a variable a non-least candidate holds
/// above its supported position no grounded chain exists and the result
/// is empty.
pub(crate) fn critical_path(
    sys: &ConstraintSystem,
    positions: &[i64],
    pitches: &[i64],
    v: VarId,
) -> Vec<Constraint> {
    let support = support_sweep(sys, positions, pitches, Some(v));
    let constraints = sys.constraints();
    let mut chain = Vec::new();
    let mut cur = v;
    while support.pred[cur.index()] != NO_PRED {
        let c = constraints[support.pred[cur.index()] as usize];
        chain.push(c);
        cur = c.from;
    }
    chain.reverse();
    chain
}

pub(crate) const NO_PRED: u32 = u32::MAX;

/// Result of [`support_sweep`]: which variables a chain of tight
/// constraints connects to the zero set, and the discovering constraint
/// per variable ([`NO_PRED`] for zero-set members and unsupported
/// variables).
pub(crate) struct Support {
    pub supported: Vec<bool>,
    pub pred: Vec<u32>,
}

impl Support {
    /// `true` when every variable is supported — the candidate is the
    /// least solution.
    pub fn all_supported(&self) -> bool {
        self.supported.iter().all(|&s| s)
    }
}

/// BFS over tight (zero-slack) edges forward from the zero set — the
/// shared core of the warm-start exactness check and the critical-path
/// walk. A supported variable's position is witnessed by a grounded
/// chain of tight constraints; in a feasible candidate that makes it
/// exactly the variable's least position. Stops early once `until` is
/// supported.
pub(crate) fn support_sweep(
    sys: &ConstraintSystem,
    positions: &[i64],
    pitches: &[i64],
    until: Option<VarId>,
) -> Support {
    let graph = sys.graph();
    let n = sys.num_vars();
    let constraints = sys.constraints();
    let mut pred = vec![NO_PRED; n];
    let mut supported = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&u| positions[u] == 0).collect();
    for &u in &queue {
        supported[u] = true;
    }
    let mut head = 0;
    'bfs: while head < queue.len() {
        let u = queue[head];
        head += 1;
        for e in graph.outgoing(VarId::from_index(u)) {
            let t = e.other.index();
            if supported[t] {
                continue;
            }
            let c = &constraints[e.constraint as usize];
            if sys.slack_of(c, positions, pitches) == 0 {
                supported[t] = true;
                pred[t] = e.constraint;
                if until.is_some_and(|v| t == v.index()) {
                    break 'bfs;
                }
                queue.push(t);
            }
        }
    }
    Support { supported, pred }
}
