//! Longest-path constraint solving (§6.4.2): sorted-edge Bellman-Ford,
//! a one-pass topological solver for acyclic systems, warm-started
//! relaxation, and the jog-avoiding balanced mode (Fig 6.8).
//!
//! "The Bellman Ford assigns to each vertex the lowest possible abscissa
//! subject to the constraints. The algorithm proved to be extremely fast,
//! especially if the edges are traversed in sorted (according to their
//! abscissa) order ... In the case where the initial ordering is preserved
//! in the final layout exactly one relaxation step is required instead of
//! the |E| required in the worst case."
//!
//! All procedures compute the same *least* solution (every variable at
//! its lowest feasible coordinate, all variables ≥ 0); they differ only
//! in cost:
//!
//! * [`solve`] — relaxation from zero, in either [`EdgeOrder`]; the
//!   sorted order comes precomputed from the shared
//!   [`crate::ConstraintGraph`] instead of a per-call sort,
//! * [`solve_topo`] — one O(V+E) pass in topological order when the
//!   graph is acyclic (`require_exact` pairs and folded interfaces make
//!   it cyclic; callers fall back to [`solve`]),
//! * [`solve_warm`] — relaxation seeded from a previous solution; exact
//!   (bit-for-bit the least solution, via a support check that resets
//!   any variable the seed overshot), and near-free when the seed is
//!   already the answer — the alternating x/y engine's case,
//! * [`solve_balanced`] — "rubber bands instead of ... a large magnet on
//!   the left": slack distributed on both sides (Fig 6.8).
//!
//! The solvers report relaxation passes so experiments E12/E18 can
//! regenerate the paper's pass-count claims.

use crate::{Constraint, ConstraintSystem, VarId};

/// Result of solving a (pitch-free) constraint system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    positions: Vec<i64>,
    /// Relaxation passes needed to reach the fixpoint (including the
    /// final pass that verified stability; 1 for the topological
    /// solver's single sweep).
    pub passes: usize,
}

impl Solution {
    /// The solved abscissa of an edge variable.
    pub fn position(&self, v: VarId) -> i64 {
        self.positions[v.0]
    }

    /// All positions, indexed by variable — borrowing; the hot-path
    /// accessor.
    pub fn positions(&self) -> &[i64] {
        &self.positions
    }

    /// Consumes the solution, returning the position vector without a
    /// copy.
    pub fn into_positions(self) -> Vec<i64> {
        self.positions
    }

    /// All positions as an owned copy. Prefer [`Solution::positions`]
    /// (borrowing) or [`Solution::into_positions`] on hot paths.
    pub fn positions_vec(&self) -> Vec<i64> {
        self.positions.clone()
    }

    /// Extent of the solution: `max(position) − min(position)`.
    pub fn extent(&self) -> i64 {
        let max = self.positions.iter().copied().max().unwrap_or(0);
        let min = self.positions.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Per-constraint slack under this solution (pitch-free systems).
    pub fn slacks(&self, sys: &ConstraintSystem) -> Vec<i64> {
        sys.slacks(&self.positions, &[])
    }

    /// The chain of tight constraints pinning `v` — see
    /// [`ConstraintSystem::critical_path`]. For a least solution the
    /// chain's weights sum to `position(v)`.
    pub fn critical_path(&self, sys: &ConstraintSystem, v: VarId) -> Vec<Constraint> {
        sys.critical_path(&self.positions, &[], v)
    }
}

/// Edge processing order for the relaxation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Constraints in insertion (arbitrary) order — the worst case the
    /// paper contrasts against its preliminary sort.
    Arbitrary,
    /// Constraints sorted by the initial abscissa of their `from`
    /// variable — the paper's preliminary sort, precomputed on the
    /// shared constraint graph.
    Sorted,
}

/// Infeasibility error: the constraint graph has a positive cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasible {
    /// How many passes ran before divergence was declared.
    pub passes: usize,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constraint system infeasible (positive cycle) after {} passes",
            self.passes
        )
    }
}

impl std::error::Error for Infeasible {}

/// Why a longest-path solve could not produce a solution. Every failure
/// is typed — the solvers never panic, whatever system they are handed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveFault {
    /// The constraint graph has a positive cycle.
    Infeasible(Infeasible),
    /// An intermediate position sum left the `i64` range. Unreachable
    /// for layouts within the [`rsg_geom::MAX_COORD`] ingest budget (see
    /// its overflow-freedom argument); adversarial systems built
    /// directly against this API land here instead of wrapping.
    Overflow {
        /// Which procedure overflowed.
        at: &'static str,
    },
    /// The system cannot be handled by this procedure as shaped: pitch
    /// terms (those need the LP), a seed of the wrong length, or a
    /// constraint referencing a variable of a different system.
    Shape(String),
}

impl std::fmt::Display for SolveFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveFault::Infeasible(e) => write!(f, "{e}"),
            SolveFault::Overflow { at } => {
                write!(f, "position arithmetic overflowed i64 in {at}")
            }
            SolveFault::Shape(m) => write!(f, "malformed solve request: {m}"),
        }
    }
}

impl std::error::Error for SolveFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveFault::Infeasible(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Infeasible> for SolveFault {
    fn from(e: Infeasible) -> SolveFault {
        SolveFault::Infeasible(e)
    }
}

/// Validates that every constraint references variables of this system
/// and that no pitch terms are present — the shape the longest-path
/// procedures require. Checked up front so the relaxation loops can
/// index without a panic path.
fn check_shape(sys: &ConstraintSystem) -> Result<(), SolveFault> {
    if sys.has_pitch_terms() {
        return Err(SolveFault::Shape(
            "pitch terms require the LP solver".into(),
        ));
    }
    let n = sys.num_vars();
    for c in sys.constraints() {
        if c.from.index() >= n || c.to.index() >= n {
            return Err(SolveFault::Shape(format!(
                "constraint references variable #{} but the system has {n}",
                c.from.index().max(c.to.index())
            )));
        }
    }
    Ok(())
}

/// One relaxation loop over `x` to its fixpoint; returns the pass count
/// (including the verification pass), [`SolveFault::Infeasible`] on
/// divergence, or [`SolveFault::Overflow`] if a position sum leaves
/// `i64` (impossible within the ingest budget).
fn relax(sys: &ConstraintSystem, order: EdgeOrder, x: &mut [i64]) -> Result<usize, SolveFault> {
    let n = sys.num_vars();
    let constraints = sys.constraints();
    let mut passes = 0usize;
    loop {
        passes += 1;
        let mut changed = false;
        let mut overflowed = false;
        let mut step = |c: &Constraint| {
            let Some(need) = x[c.from.0].checked_add(c.weight) else {
                overflowed = true;
                return;
            };
            if x[c.to.0] < need {
                x[c.to.0] = need;
                changed = true;
            }
        };
        match order {
            EdgeOrder::Sorted => {
                for &k in sys.graph().sorted_order() {
                    step(&constraints[k as usize]);
                }
            }
            EdgeOrder::Arbitrary => {
                for c in constraints {
                    step(c);
                }
            }
        }
        if overflowed {
            return Err(SolveFault::Overflow { at: "relax" });
        }
        if !changed {
            return Ok(passes);
        }
        if passes > n + 1 {
            return Err(SolveFault::Infeasible(Infeasible { passes }));
        }
    }
}

/// Solves for the leftmost feasible positions with all variables ≥ 0.
///
/// # Errors
///
/// Returns [`SolveFault::Infeasible`] when the constraints contain a
/// positive cycle, [`SolveFault::Shape`] when the system carries pitch
/// terms (those need [`crate::simplex`]) or references foreign
/// variables, and [`SolveFault::Overflow`] if position sums leave `i64`.
pub fn solve(sys: &ConstraintSystem, order: EdgeOrder) -> Result<Solution, SolveFault> {
    check_shape(sys)?;
    let mut x = vec![0i64; sys.num_vars()];
    let passes = relax(sys, order, &mut x)?;
    Ok(Solution {
        positions: x,
        passes,
    })
}

/// Solves seeded from `warm` (typically a previous pass's positions).
///
/// The result is bit-for-bit the same least solution [`solve`] computes,
/// for *any* seed: relaxation from the clamped seed reaches a feasible
/// fixpoint, then a support sweep finds variables the seed overshot —
/// a variable is supported when a chain of tight constraints connects it
/// to a variable at 0 — resets the unsupported ones, and re-relaxes from
/// what is now a proven under-approximation. When the seed *is* the
/// least solution (the alternating-engine steady state) the whole call
/// is one verification pass plus one O(V+E) sweep.
///
/// # Errors
///
/// Returns [`SolveFault::Infeasible`] when the constraints contain a
/// positive cycle, and [`SolveFault::Shape`] when the system carries
/// pitch terms or `warm` has the wrong length.
pub fn solve_warm(
    sys: &ConstraintSystem,
    order: EdgeOrder,
    warm: &[i64],
) -> Result<Solution, SolveFault> {
    check_shape(sys)?;
    let n = sys.num_vars();
    if warm.len() != n {
        return Err(SolveFault::Shape(format!(
            "warm seed has {} positions for {n} variables",
            warm.len()
        )));
    }
    let mut x: Vec<i64> = warm.iter().map(|&w| w.max(0)).collect();
    let mut passes = relax(sys, order, &mut x)?;

    // Support sweep over tight edges from the zero set. Feasibility
    // makes every position ≥ its least value; a tight chain from a zero
    // variable makes it ≤. Unsupported variables are exactly the ones
    // the seed pushed past their least position.
    let support = crate::graph::support_sweep(sys, &x, &[], None);
    if !support.all_supported() {
        // Supported variables already sit at their least positions;
        // resetting the rest to 0 yields a pointwise under-approximation
        // of the least solution, from which relaxation is exact.
        for (xi, &ok) in x.iter_mut().zip(&support.supported) {
            if !ok {
                *xi = 0;
            }
        }
        passes += relax(sys, order, &mut x)?;
    }
    Ok(Solution {
        positions: x,
        passes,
    })
}

/// One-pass longest path in topological order — O(V + E), no relaxation
/// loop. Returns `None` when the procedure declines the system: a cyclic
/// constraint graph (`require_exact` pairs, folded interfaces), pitch
/// terms, foreign variable references, or a position sum that would
/// overflow; callers then fall back to [`solve`], which reports the
/// non-cycle cases as typed faults. Acyclic difference-constraint
/// systems are always feasible, so no `Infeasible` case exists here.
pub fn solve_topo(sys: &ConstraintSystem) -> Option<Solution> {
    check_shape(sys).ok()?;
    let graph = sys.graph();
    let order = graph.topo_order()?;
    let mut x = vec![0i64; sys.num_vars()];
    for &v in order {
        let mut best = 0i64;
        for e in graph.incoming(v) {
            best = best.max(x[e.other.index()].checked_add(e.weight)?);
        }
        x[v.index()] = best;
    }
    Some(Solution {
        positions: x,
        passes: 1,
    })
}

/// The rubber-band solve: every variable sits midway between its earliest
/// (left-packed) and latest (right-packed, at the same total extent)
/// feasible position, then a repair sweep restores exact feasibility.
///
/// Left-packing Fig 6.8's layout tears a jog into a straight wire; the
/// balanced solution keeps slack distributed on both sides.
///
/// # Errors
///
/// Returns [`SolveFault::Infeasible`] on positive cycles, plus the
/// shape/overflow faults of [`solve`].
pub fn solve_balanced(sys: &ConstraintSystem) -> Result<Solution, SolveFault> {
    let earliest = solve(sys, EdgeOrder::Sorted)?;
    let n = sys.num_vars();
    let width = earliest.positions.iter().copied().max().unwrap_or(0);

    // Latest positions: longest path on the reversed graph from the right
    // boundary. latest[v] = width − dist_rev[v].
    let mut dist = vec![0i64; n];
    let mut passes = 0usize;
    loop {
        passes += 1;
        let mut changed = false;
        for c in sys.constraints() {
            // x_to − x_from ≥ w reversed: dist_from ≥ dist_to + w.
            let Some(need) = dist[c.to.0].checked_add(c.weight) else {
                return Err(SolveFault::Overflow {
                    at: "solve_balanced",
                });
            };
            if dist[c.from.0] < need {
                dist[c.from.0] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if passes > n + 1 {
            return Err(SolveFault::Infeasible(Infeasible { passes }));
        }
    }
    // Midpoint (floor), then a monotone repair pass for rounding slips.
    // Saturating: the midpoint is only a seed — the repair relaxation
    // restores exact feasibility (or reports a typed fault).
    let mut x: Vec<i64> = (0..n)
        .map(|v| {
            let e = earliest.positions[v];
            let l = width - dist[v];
            e.saturating_add(l.saturating_sub(e).div_euclid(2))
        })
        .collect();
    let repair_passes = relax(sys, EdgeOrder::Arbitrary, &mut x)?;
    Ok(Solution {
        positions: x,
        passes: earliest.passes + passes + repair_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintSystem;

    #[test]
    fn simple_chain() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(50);
        let c = s.add_var(90);
        s.require(a, b, 10);
        s.require(b, c, 7);
        let sol = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(a), 0);
        assert_eq!(sol.position(b), 10);
        assert_eq!(sol.position(c), 17);
        assert_eq!(sol.extent(), 17);
    }

    #[test]
    fn sorted_order_converges_in_two_passes_on_preserved_order() {
        // The paper's claim: when initial ordering survives, one
        // relaxation pass suffices (plus the verification pass).
        let mut s = ConstraintSystem::new();
        let vars: Vec<_> = (0..100).map(|k| s.add_var(k * 10)).collect();
        for w in vars.windows(2) {
            s.require(w[0], w[1], 3);
        }
        let sorted = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sorted.passes, 2, "1 relaxation + 1 verification");

        // Same system with constraints inserted back-to-front: unsorted
        // processing needs ~|V| passes.
        let mut s2 = ConstraintSystem::new();
        let vars2: Vec<_> = (0..100).map(|k| s2.add_var(k * 10)).collect();
        for k in (1..100).rev() {
            s2.require(vars2[k - 1], vars2[k], 3);
        }
        let unsorted = solve(&s2, EdgeOrder::Arbitrary).unwrap();
        let sorted2 = solve(&s2, EdgeOrder::Sorted).unwrap();
        assert_eq!(sorted2.passes, 2);
        assert!(unsorted.passes > 50, "got {}", unsorted.passes);
        // Same positions either way.
        assert_eq!(unsorted.positions(), sorted2.positions());
    }

    #[test]
    fn infeasible_positive_cycle() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require(a, b, 5);
        s.require(b, a, -4); // b − a ≥ 5 and a − b ≥ −4 → a ≤ b − 5, a ≥ b − 4: contradiction
        let err = solve(&s, EdgeOrder::Sorted).unwrap_err();
        assert!(err.to_string().contains("infeasible"));
        // The warm path reports the same infeasibility.
        assert!(solve_warm(&s, EdgeOrder::Sorted, &[0, 0]).is_err());
    }

    #[test]
    fn equality_cycles_are_fine() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require_exact(a, b, 12);
        let sol = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(b) - sol.position(a), 12);
    }

    #[test]
    fn topo_solver_matches_bellman_ford_on_a_dag() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let c = s.add_var(5);
        let d = s.add_var(30);
        s.require(a, b, 4);
        s.require(a, c, 9);
        s.require(c, b, 1);
        s.require(b, d, 2);
        s.require(c, d, 20);
        let topo = solve_topo(&s).expect("acyclic");
        let bf = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(topo.positions(), bf.positions());
        assert_eq!(topo.passes, 1);
    }

    #[test]
    fn topo_solver_declines_cycles() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require_exact(a, b, 12);
        assert!(solve_topo(&s).is_none(), "exact pair is a two-cycle");
        assert!(!s.graph().is_acyclic());
    }

    #[test]
    fn vacuous_self_loops_do_not_block_the_topo_solver() {
        // The leaf compactor's pitch-floor constraints reduce to
        // `x_v − x_v ≥ w` with w ≤ 0 once the pitch is fixed; they bind
        // nothing and must not force the Bellman-Ford fallback.
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        s.require(a, b, 4);
        s.require(a, a, -6);
        let topo = solve_topo(&s).expect("self-loop with w ≤ 0 is vacuous");
        assert_eq!(
            topo.positions(),
            solve(&s, EdgeOrder::Sorted).unwrap().positions()
        );
    }

    #[test]
    fn warm_start_from_the_answer_takes_one_pass() {
        let mut s = ConstraintSystem::new();
        let vars: Vec<_> = (0..50).map(|k| s.add_var(k * 10)).collect();
        for w in vars.windows(2) {
            s.require(w[0], w[1], 3);
        }
        let cold = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(cold.passes, 2);
        let warm = solve_warm(&s, EdgeOrder::Sorted, cold.positions()).unwrap();
        assert_eq!(warm.positions(), cold.positions(), "bit-for-bit");
        assert_eq!(warm.passes, 1, "verification only");
    }

    #[test]
    fn warm_start_recovers_from_an_overshooting_seed() {
        // Seed every variable far above the least solution, including an
        // equality cycle that a naive pull-down could never lower.
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        let c = s.add_var(0);
        s.require_exact(a, b, 12);
        s.require(b, c, 3);
        let cold = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(cold.positions(), &[0, 12, 15]);
        let warm = solve_warm(&s, EdgeOrder::Sorted, &[100, 112, 115]).unwrap();
        assert_eq!(warm.positions(), cold.positions(), "bit-for-bit");
    }

    #[test]
    fn warm_start_clamps_negative_seeds() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        s.require(a, b, 5);
        let warm = solve_warm(&s, EdgeOrder::Sorted, &[-7, -2]).unwrap();
        assert_eq!(warm.positions(), &[0, 5]);
    }

    #[test]
    fn critical_path_weights_sum_to_the_position() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(50);
        let c = s.add_var(90);
        s.require(a, b, 10);
        s.require(b, c, 7);
        s.require(a, c, 5); // slack at the solution — not on the path
        let sol = solve(&s, EdgeOrder::Sorted).unwrap();
        let chain = sol.critical_path(&s, c);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.iter().map(|k| k.weight).sum::<i64>(), sol.position(c));
        assert_eq!(chain[0].from, a);
        assert_eq!(chain[1].to, c);
        // Slack vector: the bypass constraint has slack 17 − 5 = 12.
        let slacks = sol.slacks(&s);
        assert_eq!(slacks, vec![0, 0, 12]);
    }

    #[test]
    fn balanced_solution_is_feasible_and_centered() {
        // a fixed chain a→b, and a floater f constrained only to the left
        // wall: left-packing puts f at 0; balanced centers it.
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(100);
        let f = s.add_var(40);
        s.require(a, b, 100);
        s.require(a, f, 0);
        s.require(f, b, 10); // f can sit anywhere in [0, 90]
        let left = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(left.position(f), 0);
        let bal = solve_balanced(&s).unwrap();
        assert!(s.violations(bal.positions(), &[]).is_empty());
        assert_eq!(bal.position(f), 45, "midpoint of [0, 90]");
        // Total extent unchanged.
        assert_eq!(bal.position(b) - bal.position(a), 100);
    }

    #[test]
    fn balanced_avoids_the_fig_6_8_jog() {
        // Two wire stubs that should stay aligned: stub T (top row) is
        // pinned between obstacles; stub B (bottom row) is free. Pure
        // left-packing yanks B to the wall, creating a jog |x_T − x_B|.
        let mut s = ConstraintSystem::new();
        let wall = s.add_var(0);
        let t = s.add_var(40);
        let b = s.add_var(40);
        let right = s.add_var(100);
        s.require(wall, t, 40); // obstacle holds T at 40
        s.require(t, right, 10);
        s.require(wall, b, 0); // B only needs to clear the wall
        s.require(b, right, 10);
        s.require(wall, right, 100);

        let left = solve(&s, EdgeOrder::Sorted).unwrap();
        let jog_left = (left.position(t) - left.position(b)).abs();
        let bal = solve_balanced(&s).unwrap();
        let jog_bal = (bal.position(t) - bal.position(b)).abs();
        assert_eq!(jog_left, 40);
        assert!(jog_bal < jog_left, "balanced {jog_bal} vs left {jog_left}");
        assert!(s.violations(bal.positions(), &[]).is_empty());
    }

    #[test]
    fn empty_system() {
        let s = ConstraintSystem::new();
        let sol = solve(&s, EdgeOrder::Arbitrary).unwrap();
        assert_eq!(sol.extent(), 0);
        assert_eq!(sol.passes, 1);
        assert!(solve_topo(&s).is_some());
    }
}
