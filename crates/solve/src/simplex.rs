//! A small dense Big-M simplex LP solver (§6.4.2's "solve the system of
//! equations using a linear programming algorithm like Simplex \[10\]").
//!
//! Leaf-cell constraint systems carry pitch variables, so "the weights on
//! the edges are not all constants" and Bellman-Ford no longer applies;
//! the paper proposes converting the graph to linear inequalities and
//! minimizing a cost function over them. Problem sizes are tiny (tens of
//! variables), so a dense tableau is entirely adequate.

use std::fmt;

/// Comparison sense of one LP row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `coeffs · z ≥ rhs`
    Ge,
    /// `coeffs · z ≤ rhs`
    Le,
    /// `coeffs · z = rhs`
    Eq,
}

/// One LP row: sparse coefficients, comparison sense, right-hand side.
type Row = (Vec<(usize, f64)>, Sense, f64);

/// A linear program: minimize `objective · z` subject to rows, `z ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct Lp {
    n: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

/// LP failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// Iteration limit hit (numerical trouble).
    Stalled,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Stalled => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

impl Lp {
    /// Creates a program over `n` non-negative variables with the given
    /// minimization objective (length `n`).
    ///
    /// # Panics
    ///
    /// Panics if the objective length differs from `n`.
    pub fn new(n: usize, objective: Vec<f64>) -> Lp {
        assert_eq!(objective.len(), n, "objective length mismatch");
        Lp {
            n,
            objective,
            rows: Vec::new(),
        }
    }

    /// Adds a constraint row given as sparse `(variable, coefficient)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variable indices.
    pub fn add_row(&mut self, coeffs: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(v < self.n, "variable {v} out of range");
        }
        self.rows.push((coeffs, sense, rhs));
    }

    /// Solves with the Big-M method.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::Stalled`].
    // The dense-tableau loops index several parallel arrays at once;
    // iterator rewrites would obscure the pivoting arithmetic.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self) -> Result<Vec<f64>, LpError> {
        let m = self.rows.len();
        if m == 0 {
            return Ok(vec![0.0; self.n]);
        }
        // Column layout: [structural | slack/surplus | artificial].
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for (_, sense, rhs) in &self.rows {
            let flip = *rhs < 0.0;
            let s = effective_sense(*sense, flip);
            match s {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let total = self.n + n_slack + n_art;
        let big_m = 1e9;
        let mut t = vec![vec![0.0f64; total + 1]; m]; // tableau rows
        let mut basis = vec![0usize; m];
        let mut slack_at = self.n;
        let mut art_at = self.n + n_slack;

        for (r, (coeffs, sense, rhs)) in self.rows.iter().enumerate() {
            let flip = *rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for &(v, c) in coeffs {
                t[r][v] += sgn * c;
            }
            t[r][total] = sgn * rhs;
            match effective_sense(*sense, flip) {
                Sense::Le => {
                    t[r][slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                Sense::Ge => {
                    t[r][slack_at] = -1.0;
                    slack_at += 1;
                    t[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_at += 1;
                }
                Sense::Eq => {
                    t[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_at += 1;
                }
            }
        }

        // Cost row with Big-M on artificials.
        let mut cost = vec![0.0f64; total + 1];
        for (v, &c) in self.objective.iter().enumerate() {
            cost[v] = c;
        }
        for a in self.n + n_slack..total {
            cost[a] = big_m;
        }
        // Reduced costs: z row = cost − Σ (basic cost × row).
        let mut zrow = cost.clone();
        for r in 0..m {
            let cb = cost[basis[r]];
            if cb != 0.0 {
                for col in 0..=total {
                    zrow[col] -= cb * t[r][col];
                }
            }
        }

        let max_iter = 200 * (total + m + 1);
        for _ in 0..max_iter {
            // Entering column: most negative reduced cost.
            let mut enter = None;
            let mut best = -1e-7;
            for col in 0..total {
                if zrow[col] < best {
                    best = zrow[col];
                    enter = Some(col);
                }
            }
            let Some(enter) = enter else {
                // Optimal; check artificials are out (feasibility).
                for r in 0..m {
                    if basis[r] >= self.n + n_slack && t[r][total] > 1e-6 {
                        return Err(LpError::Infeasible);
                    }
                }
                let mut x = vec![0.0; self.n];
                for r in 0..m {
                    if basis[r] < self.n {
                        x[basis[r]] = t[r][total];
                    }
                }
                return Ok(x);
            };
            // Ratio test.
            let mut leave = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                if t[r][enter] > 1e-9 {
                    let ratio = t[r][total] / t[r][enter];
                    if ratio < best_ratio - 1e-12 {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };
            // Pivot.
            let pivot = t[leave][enter];
            for col in 0..=total {
                t[leave][col] /= pivot;
            }
            for r in 0..m {
                if r != leave {
                    let factor = t[r][enter];
                    if factor != 0.0 {
                        for col in 0..=total {
                            t[r][col] -= factor * t[leave][col];
                        }
                    }
                }
            }
            let zfactor = zrow[enter];
            if zfactor != 0.0 {
                for col in 0..=total {
                    zrow[col] -= zfactor * t[leave][col];
                }
            }
            basis[leave] = enter;
        }
        Err(LpError::Stalled)
    }
}

fn effective_sense(sense: Sense, flip: bool) -> Sense {
    if !flip {
        return sense;
    }
    match sense {
        Sense::Ge => Sense::Le,
        Sense::Le => Sense::Ge,
        Sense::Eq => Sense::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn textbook_minimum() {
        // minimize x + 2y s.t. x + y >= 4, x <= 3, y <= 5.
        let mut lp = Lp::new(2, vec![1.0, 2.0]);
        lp.add_row(vec![(0, 1.0), (1, 1.0)], Sense::Ge, 4.0);
        lp.add_row(vec![(0, 1.0)], Sense::Le, 3.0);
        lp.add_row(vec![(1, 1.0)], Sense::Le, 5.0);
        let x = lp.solve().unwrap();
        assert_close(x[0], 3.0);
        assert_close(x[1], 1.0);
    }

    #[test]
    fn equality_rows() {
        // minimize y s.t. x + y = 10, y - x >= 2 → x=4, y=6.
        let mut lp = Lp::new(2, vec![0.0, 1.0]);
        lp.add_row(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 10.0);
        lp.add_row(vec![(1, 1.0), (0, -1.0)], Sense::Ge, 2.0);
        let x = lp.solve().unwrap();
        assert_close(x[0], 4.0);
        assert_close(x[1], 6.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(1, vec![1.0]);
        lp.add_row(vec![(0, 1.0)], Sense::Ge, 5.0);
        lp.add_row(vec![(0, 1.0)], Sense::Le, 3.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // maximize x (minimize −x) with no upper bound.
        let mut lp = Lp::new(1, vec![-1.0]);
        lp.add_row(vec![(0, 1.0)], Sense::Ge, 0.0);
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y >= -3, minimize x with y <= 4 → x = max(0, y-3)... y free
        // to be 0: x = 0.
        let mut lp = Lp::new(2, vec![1.0, 0.0]);
        lp.add_row(vec![(0, 1.0), (1, -1.0)], Sense::Ge, -3.0);
        lp.add_row(vec![(1, 1.0)], Sense::Le, 4.0);
        let x = lp.solve().unwrap();
        assert_close(x[0], 0.0);
    }

    #[test]
    fn empty_program() {
        let lp = Lp::new(3, vec![1.0, 1.0, 1.0]);
        assert_eq!(lp.solve().unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn difference_constraints_with_pitch_shape() {
        // The Fig 6.3 shape: y2 − y1 + λ ≥ 8, y1 − y2 ≥ −3 (i.e. y2 ≤ y1+3),
        // minimize λ → λ = 5 at y2 − y1 = 3.
        let mut lp = Lp::new(3, vec![0.0, 0.0, 1.0]);
        lp.add_row(vec![(1, 1.0), (0, -1.0), (2, 1.0)], Sense::Ge, 8.0);
        lp.add_row(vec![(0, 1.0), (1, -1.0)], Sense::Ge, -3.0);
        let x = lp.solve().unwrap();
        assert_close(x[2], 5.0);
    }
}
