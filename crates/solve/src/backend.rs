//! Pluggable solver backends for the compaction engine.
//!
//! The paper uses two solution procedures: Bellman-Ford longest path when
//! every constraint weight is constant (§6.4.2), and "a linear
//! programming algorithm like Simplex" when pitch variables make the
//! weights symbolic (§6.2). The seed code hard-wired that choice inside
//! the leaf compactor; the [`Solver`] trait turns it into a backend the
//! caller picks, so the leaf compactor and the alternating engine in
//! `rsg-compact` run unchanged over any of:
//!
//! * [`BellmanFord`] — left-packing longest path, in either
//!   [`EdgeOrder`]; the paper's default. Accepts a warm-start position
//!   vector through [`Solver::solve_system_warm`],
//! * [`Topological`] — the one-pass O(V+E) longest path when the
//!   constraint graph is acyclic, with automatic Bellman-Ford fallback
//!   when `require_exact` pairs or folded interfaces create cycles,
//! * [`Balanced`] — the jog-avoiding "rubber bands, not a large magnet"
//!   mode of Fig 6.8,
//! * [`SimplexPitch`] — the dense LP, useful when the pitch trade-off
//!   itself (not just feasibility) is the object of study.
//!
//! Systems *with* pitch variables always need the LP to choose the
//! pitches; backends differ in how edge positions are refined once the
//! pitches are fixed and the system reduces to difference constraints.

use crate::simplex::{Lp, LpError, Sense};
use crate::solver::{self, EdgeOrder, Infeasible, Solution, SolveFault};
use crate::{Constraint, ConstraintSystem, VarId};

/// A complete solution: integral edge positions and pitch values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Solved coordinate per edge variable, indexed by [`VarId`].
    pub positions: Vec<i64>,
    /// Solved value per pitch variable, indexed by
    /// [`crate::PitchId`] (empty when the system has no pitches).
    pub pitches: Vec<i64>,
    /// Relaxation passes of the final longest-path phase (0 when the
    /// backend did not run one).
    pub passes: usize,
}

impl Outcome {
    /// Per-constraint slack of this outcome against `sys` — zero means
    /// the constraint is tight (binding), negative would mean violated.
    pub fn slacks(&self, sys: &ConstraintSystem) -> Vec<i64> {
        sys.slacks(&self.positions, &self.pitches)
    }

    /// The chain of tight constraints pinning `v` at its solved
    /// position — see [`ConstraintSystem::critical_path`].
    pub fn critical_path(&self, sys: &ConstraintSystem, v: VarId) -> Vec<Constraint> {
        sys.critical_path(&self.positions, &self.pitches, v)
    }
}

/// Backend failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies the constraints (positive cycle / empty
    /// LP feasible region).
    Infeasible(String),
    /// Fractional pitches could not be rounded to a feasible integral
    /// assignment.
    Rounding(String),
    /// Position arithmetic left the `i64` range — unreachable for
    /// layouts within the [`rsg_geom::MAX_COORD`] ingest budget, typed
    /// instead of wrapping for systems built outside it.
    Overflow(String),
    /// The request itself was malformed: pitch-weight count mismatch,
    /// wrong-length warm seed, or constraints referencing variables of a
    /// different system.
    Input(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible(m) => write!(f, "constraint system infeasible: {m}"),
            SolveError::Rounding(m) => write!(f, "pitch rounding failed: {m}"),
            SolveError::Overflow(m) => write!(f, "position arithmetic overflowed: {m}"),
            SolveError::Input(m) => write!(f, "malformed solve request: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<Infeasible> for SolveError {
    fn from(e: Infeasible) -> SolveError {
        SolveError::Infeasible(e.to_string())
    }
}

impl From<SolveFault> for SolveError {
    fn from(e: SolveFault) -> SolveError {
        match e {
            SolveFault::Infeasible(i) => SolveError::Infeasible(i.to_string()),
            SolveFault::Overflow { at } => SolveError::Overflow(at.into()),
            SolveFault::Shape(m) => SolveError::Input(m),
        }
    }
}

/// A constraint-system solver the compaction pipeline can be run over.
///
/// `pitch_weights` supplies the §6.2 cost weights (one per pitch
/// variable, the expected replication factor `nᵢ` of `X ≈ Σ nᵢλᵢ`); it
/// must have length [`ConstraintSystem::num_pitches`].
///
/// # Example
///
/// ```
/// use rsg_solve::backend::{BellmanFord, Balanced, Topological, Solver};
/// use rsg_solve::ConstraintSystem;
///
/// let mut sys = ConstraintSystem::new();
/// let a = sys.add_var(0);
/// let b = sys.add_var(50);
/// sys.require(a, b, 10); // b − a ≥ 10
///
/// // Any backend can solve the same system.
/// for backend in [&BellmanFord::SORTED as &dyn Solver, &Balanced, &Topological] {
///     let out = backend.solve_system(&sys, &[]).unwrap();
///     assert!(out.positions[b.index()] - out.positions[a.index()] >= 10);
/// }
/// ```
pub trait Solver: Sync {
    /// Short backend name, for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Solves the system for integral positions (and pitches, if any).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the system is infeasible or pitch
    /// rounding fails.
    fn solve_system(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
    ) -> Result<Outcome, SolveError>;

    /// Solves with a warm-start position vector (a previous pass's
    /// solution for the same variables). Backends that cannot exploit a
    /// seed fall through to [`Solver::solve_system`]; every backend
    /// returns the same answer either way — warm starting only changes
    /// the work needed to reach it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the system is infeasible or pitch
    /// rounding fails.
    fn solve_system_warm(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
        _warm: &[i64],
    ) -> Result<Outcome, SolveError> {
        self.solve_system(sys, pitch_weights)
    }
}

/// The paper's longest-path solver: every variable at its lowest
/// feasible coordinate (left-packed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BellmanFord {
    /// Relaxation order of the constraint edges.
    pub order: EdgeOrder,
}

impl BellmanFord {
    /// Sorted edges — the paper's preliminary-sort optimization.
    pub const SORTED: BellmanFord = BellmanFord {
        order: EdgeOrder::Sorted,
    };
    /// Insertion-order edges (the |E|-pass worst case).
    pub const ARBITRARY: BellmanFord = BellmanFord {
        order: EdgeOrder::Arbitrary,
    };
}

impl Default for BellmanFord {
    fn default() -> BellmanFord {
        BellmanFord::SORTED
    }
}

impl Solver for BellmanFord {
    fn name(&self) -> &'static str {
        match self.order {
            EdgeOrder::Sorted => "bellman-ford/sorted",
            EdgeOrder::Arbitrary => "bellman-ford/arbitrary",
        }
    }

    fn solve_system(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
    ) -> Result<Outcome, SolveError> {
        if sys.num_pitches() == 0 {
            let sol = solver::solve(sys, self.order)?;
            return Ok(from_solution(sol));
        }
        pitch_search(sys, pitch_weights, &|reduced| {
            solver::solve(reduced, self.order)
        })
    }

    fn solve_system_warm(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
        warm: &[i64],
    ) -> Result<Outcome, SolveError> {
        if sys.num_pitches() == 0 {
            let sol = solver::solve_warm(sys, self.order, warm)?;
            return Ok(from_solution(sol));
        }
        // Pitch systems go through the LP; the seed cannot shortcut the
        // pitch search itself.
        self.solve_system(sys, pitch_weights)
    }
}

/// The one-pass topological longest-path backend: O(V+E) on acyclic
/// systems, automatic sorted Bellman-Ford fallback when `require_exact`
/// pairs or folded interfaces make the constraint graph cyclic. Same
/// least solution as [`BellmanFord`] in every case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Topological;

impl Topological {
    fn refine(sys: &ConstraintSystem) -> Result<Solution, SolveFault> {
        match solver::solve_topo(sys) {
            Some(sol) => Ok(sol),
            None => solver::solve(sys, EdgeOrder::Sorted),
        }
    }
}

impl Solver for Topological {
    fn name(&self) -> &'static str {
        "topological"
    }

    fn solve_system(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
    ) -> Result<Outcome, SolveError> {
        if sys.num_pitches() == 0 {
            return Ok(from_solution(Topological::refine(sys)?));
        }
        pitch_search(sys, pitch_weights, &Topological::refine)
    }
}

/// The jog-avoiding balanced mode (Fig 6.8): slack distributed on both
/// sides instead of packed against the left wall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Balanced;

impl Solver for Balanced {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn solve_system(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
    ) -> Result<Outcome, SolveError> {
        if sys.num_pitches() == 0 {
            let sol = solver::solve_balanced(sys)?;
            return Ok(from_solution(sol));
        }
        pitch_search(sys, pitch_weights, &solver::solve_balanced)
    }
}

/// The dense Big-M simplex backend: positions and pitches through the LP
/// even when no pitch variables force it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexPitch;

impl Solver for SimplexPitch {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve_system(
        &self,
        sys: &ConstraintSystem,
        pitch_weights: &[i64],
    ) -> Result<Outcome, SolveError> {
        // The LP decides the pitches; a longest-path pass restores exact
        // integrality of the edge positions (LP optima are rational).
        pitch_search(sys, pitch_weights, &|reduced| {
            solver::solve(reduced, EdgeOrder::Sorted)
        })
    }
}

fn from_solution(sol: Solution) -> Outcome {
    let passes = sol.passes;
    Outcome {
        positions: sol.into_positions(),
        pitches: Vec::new(),
        passes,
    }
}

/// LP solve + integral pitch rounding + longest-path refinement through
/// the backend-chosen `refine` procedure (paper §6.2 + §6.4.2).
fn pitch_search(
    sys: &ConstraintSystem,
    pitch_weights: &[i64],
    refine: &dyn Fn(&ConstraintSystem) -> Result<Solution, SolveFault>,
) -> Result<Outcome, SolveError> {
    if pitch_weights.len() != sys.num_pitches() {
        return Err(SolveError::Input(format!(
            "{} cost weights for {} pitch variables",
            pitch_weights.len(),
            sys.num_pitches()
        )));
    }
    let n = sys.num_vars();
    let p = sys.num_pitches();
    // LP variables: [edges 0..n | pitches n..n+p]. The tiny per-edge
    // objective keeps the polytope's leftmost vertex preferred without
    // competing with the pitch costs.
    let mut objective = vec![1e-4f64; n];
    objective.extend(pitch_weights.iter().map(|&w| w as f64));
    let mut lp = Lp::new(n + p, objective);
    for c in sys.constraints() {
        let mut row = vec![(c.to.index(), 1.0), (c.from.index(), -1.0)];
        if let Some((pid, k)) = c.pitch {
            row.push((n + pid.index(), k as f64));
        }
        lp.add_row(row, Sense::Ge, c.weight as f64);
    }
    let x = lp
        .solve()
        .map_err(|e: LpError| SolveError::Infeasible(e.to_string()))?;

    // Round pitches to integers: try floor/ceil combinations (p is tiny),
    // keep the feasible combination with minimum cost.
    let floats: Vec<f64> = (0..p).map(|k| x[n + k]).collect();
    let mut best: Option<(i128, Solution, Vec<i64>)> = None;
    for mask in 0..(1usize << p.min(16)) {
        let candidate: Vec<i64> = floats
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let f = v.floor() as i64;
                if mask & (1 << k) != 0 {
                    f + 1
                } else {
                    f
                }
            })
            .collect();
        if candidate.iter().any(|&v| v < 0) {
            continue;
        }
        if let Some(sol) = refine_fixed(sys, &candidate, refine) {
            // i128: pitch·weight products of adversarial magnitudes must
            // not wrap while comparing candidates.
            let cost: i128 = candidate
                .iter()
                .zip(pitch_weights)
                .map(|(&l, &w)| l as i128 * w as i128)
                .sum();
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, sol, candidate));
            }
        }
    }
    if best.is_none() {
        // Escalate: bump all pitches upward together a few steps.
        for bump in 1..=4 {
            let candidate: Vec<i64> = floats.iter().map(|&v| v.ceil() as i64 + bump).collect();
            if let Some(sol) = refine_fixed(sys, &candidate, refine) {
                best = Some((0, sol, candidate));
                break;
            }
        }
    }
    let (_, sol, pitches) = best.ok_or_else(|| {
        SolveError::Rounding(format!("no integral pitch assignment near {floats:?}"))
    })?;
    let passes = sol.passes;
    Ok(Outcome {
        positions: sol.into_positions(),
        pitches,
        passes,
    })
}

/// With pitches fixed, the system reduces to difference constraints the
/// backend's refinement procedure can handle. Candidates whose reduced
/// weights overflow `i64` are rejected (`None`) like any other
/// infeasible rounding.
fn refine_fixed(
    sys: &ConstraintSystem,
    pitches: &[i64],
    refine: &dyn Fn(&ConstraintSystem) -> Result<Solution, SolveFault>,
) -> Option<Solution> {
    let mut reduced = ConstraintSystem::new_along(sys.axis());
    for v in 0..sys.num_vars() {
        reduced.add_var(sys.initial(VarId(v)));
    }
    for c in sys.constraints() {
        let pitch_part = match c.pitch {
            None => 0,
            Some((pid, k)) => k.checked_mul(*pitches.get(pid.index())?)?,
        };
        let w = c.weight.checked_sub(pitch_part)?;
        reduced.require(c.from, c.to, w);
    }
    refine(&reduced).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ConstraintSystem {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(40);
        let c = s.add_var(90);
        s.require(a, b, 10);
        s.require(b, c, 7);
        s.require(a, c, 30);
        s
    }

    #[test]
    fn backends_agree_on_feasibility() {
        let s = chain();
        for backend in [
            &BellmanFord::SORTED as &dyn Solver,
            &BellmanFord::ARBITRARY,
            &Topological,
            &Balanced,
            &SimplexPitch,
        ] {
            let out = backend.solve_system(&s, &[]).unwrap();
            assert!(
                s.violations(&out.positions, &out.pitches).is_empty(),
                "{} produced violations",
                backend.name()
            );
        }
    }

    #[test]
    fn bellman_ford_orders_agree_on_positions() {
        let s = chain();
        let a = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        let b = BellmanFord::ARBITRARY.solve_system(&s, &[]).unwrap();
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn pitch_system_through_any_backend() {
        // b − a ≥ 4 and λ − (b − a) ≥ 2: minimal pitch λ = 6 at weight 1.
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let p = s.add_pitch("l");
        s.require(a, b, 4);
        s.require_with_pitch(b, a, 2, p, 1);
        for backend in [
            &BellmanFord::SORTED as &dyn Solver,
            &Topological,
            &Balanced,
            &SimplexPitch,
        ] {
            let out = backend.solve_system(&s, &[1]).unwrap();
            assert_eq!(out.pitches.len(), 1, "{}", backend.name());
            assert!(
                s.violations(&out.positions, &out.pitches).is_empty(),
                "{}",
                backend.name()
            );
            assert_eq!(out.pitches[0], 6, "{} pitch", backend.name());
        }
    }

    #[test]
    fn infeasible_reported() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require(a, b, 5);
        s.require(b, a, -4);
        for backend in [
            &BellmanFord::SORTED as &dyn Solver,
            &Topological,
            &Balanced,
            &SimplexPitch,
        ] {
            let err = backend.solve_system(&s, &[]).unwrap_err();
            assert!(
                matches!(err, SolveError::Infeasible(_)),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            BellmanFord::SORTED.name(),
            BellmanFord::ARBITRARY.name(),
            Topological.name(),
            Balanced.name(),
            SimplexPitch.name(),
        ];
        let mut uniq = names.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }

    #[test]
    fn topological_matches_bellman_ford_on_cyclic_systems_via_fallback() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(20);
        let c = s.add_var(40);
        s.require_exact(a, b, 12); // two-cycle: forces the fallback
        s.require(b, c, 5);
        assert!(!s.graph().is_acyclic());
        let topo = Topological.solve_system(&s, &[]).unwrap();
        let bf = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        assert_eq!(topo.positions, bf.positions);
    }

    #[test]
    fn warm_solve_matches_cold_through_the_trait() {
        let s = chain();
        let cold = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        let warm = BellmanFord::SORTED
            .solve_system_warm(&s, &[], &cold.positions)
            .unwrap();
        assert_eq!(warm.positions, cold.positions);
        assert!(warm.passes < cold.passes, "seeded with the answer");
        // Backends without a warm path fall through and still agree.
        let bal = Balanced
            .solve_system_warm(&s, &[], &cold.positions)
            .unwrap();
        assert_eq!(
            bal.positions,
            Balanced.solve_system(&s, &[]).unwrap().positions
        );
    }

    #[test]
    fn outcome_slack_and_critical_path() {
        let s = chain();
        let out = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        let slacks = out.slacks(&s);
        // a→b (10) and b→c (7) are tight; a→c (30) binds instead of the
        // chain when 30 > 17 — check against the actual solution.
        assert!(slacks.iter().all(|&sl| sl >= 0));
        let c_var = VarId(2);
        let chain = out.critical_path(&s, c_var);
        let total: i64 = chain.iter().map(|k| k.weight).sum();
        assert_eq!(total, out.positions[c_var.index()]);
    }
}
