//! The constraint-solving subsystem of the leaf-cell compactor (§6.2–6.4.2),
//! extracted from `rsg-compact` so it can be tested, benchmarked, and
//! reused independently of any layout machinery.
//!
//! The pipeline above this crate (scanline constraint generation, the
//! leaf compactor, the alternating x/y engine) produces systems of
//! difference constraints `x_to − x_from + Σcλ ≥ w`; this crate owns
//! everything that happens after generation:
//!
//! * [`ConstraintSystem`] — the system itself, with a lazily built CSR
//!   adjacency ([`ConstraintGraph`]) shared by every solver instead of
//!   each backend re-deriving its own view of the flat constraint list,
//! * [`solver`] — the longest-path procedures: sorted-edge Bellman-Ford
//!   (§6.4.2), a one-pass **topological** solver for acyclic systems,
//!   a **warm-started** relaxation seeded from a previous solution, and
//!   the jog-avoiding balanced mode (Fig 6.8),
//! * [`simplex`] — the dense Big-M LP for pitch trade-offs (§6.2),
//! * [`backend`] — the [`Solver`] trait the compaction pipeline is
//!   generic over, plus per-constraint **slack** and `critical_path`
//!   diagnostics that explain *which* constraints set a solved extent.
//!
//! # Example
//!
//! ```
//! use rsg_solve::solver::{self, EdgeOrder};
//! use rsg_solve::ConstraintSystem;
//!
//! let mut sys = ConstraintSystem::new();
//! let a = sys.add_var(0);
//! let b = sys.add_var(50);
//! sys.require(a, b, 10); // b − a ≥ 10
//!
//! let sol = solver::solve(&sys, EdgeOrder::Sorted).unwrap();
//! assert_eq!(sol.position(b), 10);
//! // The chain of tight constraints explains why b sits at 10.
//! let chain = sol.critical_path(&sys, b);
//! assert_eq!(chain.iter().map(|c| c.weight).sum::<i64>(), 10);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod backend;
mod constraint;
mod graph;
pub mod simplex;
pub mod solver;

pub use backend::{Balanced, BellmanFord, Outcome, SimplexPitch, SolveError, Solver, Topological};
pub use constraint::{Constraint, ConstraintSystem, PitchId, VarId};
pub use graph::ConstraintGraph;
pub use solver::{Infeasible, SolveFault};
