//! The constraint representation of §6.3.
//!
//! Variables are the abscissas of vertical box edges; pitch variables λᵢ
//! are the per-interface spacing unknowns of leaf-cell compaction. Every
//! constraint is linear with at most two edge variables and at most one
//! pitch term:
//!
//! ```text
//! x_to − x_from + coeff·λ ≥ weight
//! ```
//!
//! With no pitch term this is the classic difference constraint solvable
//! by longest-path (Bellman-Ford); with pitch terms the system "cannot be
//! solved by shortest path algorithms ... because the weights on the edges
//! are not all constants" and goes to the LP solver instead.
//!
//! The paper fixes the sweep direction to x; here the system is
//! parameterized by [`Axis`], so the same representation (and the same
//! solvers) serve y-compaction without transposing the layout first —
//! variables are then ordinates of horizontal edges.

use crate::graph::ConstraintGraph;
use rsg_geom::Axis;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Handle to an edge-position variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0
    }

    pub(crate) const fn from_index(i: usize) -> VarId {
        VarId(i)
    }
}

/// Handle to a pitch variable λᵢ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PitchId(pub(crate) usize);

impl PitchId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// One linear constraint `x_to − x_from + coeff·λ ≥ weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// Variable on the positive side.
    pub to: VarId,
    /// Variable on the negative side.
    pub from: VarId,
    /// Required minimum separation.
    pub weight: i64,
    /// Optional pitch term `(λ, coefficient)`.
    pub pitch: Option<(PitchId, i64)>,
}

/// A system of edge variables, pitch variables, and constraints, tagged
/// with the [`Axis`] its variables move along.
///
/// The CSR adjacency view ([`ConstraintGraph`]) is built lazily on the
/// first [`ConstraintSystem::graph`] call and cached until the system is
/// mutated, so every solver backend shares one graph instead of
/// re-walking (and re-sorting) the flat constraint list per solve.
#[derive(Debug)]
pub struct ConstraintSystem {
    axis: Axis,
    var_initial: Vec<i64>,
    pitch_names: Vec<String>,
    constraints: Vec<Constraint>,
    graph: OnceLock<ConstraintGraph>,
    /// Content snapshot taken by the last [`ConstraintSystem::reset`].
    /// `prev_valid` records whether `spare` holds the graph built for
    /// exactly that snapshot, so a refill that reproduces the previous
    /// sweep's content can skip the CSR rebuild wholesale.
    prev_axis: Axis,
    prev_var_initial: Vec<i64>,
    prev_constraints: Vec<Constraint>,
    prev_valid: bool,
    /// Retired graph parked for buffer reuse (or, with `prev_valid`,
    /// wholesale reuse). A `Mutex` only because `OnceLock` forces the
    /// lazy `graph()` path to run under `&self`; it is never contended.
    spare: Mutex<Option<ConstraintGraph>>,
}

impl Clone for ConstraintSystem {
    fn clone(&self) -> ConstraintSystem {
        // The graph cache is cheap to rebuild; clones start cold.
        ConstraintSystem {
            axis: self.axis,
            var_initial: self.var_initial.clone(),
            pitch_names: self.pitch_names.clone(),
            constraints: self.constraints.clone(),
            graph: OnceLock::new(),
            prev_axis: self.axis,
            prev_var_initial: Vec::new(),
            prev_constraints: Vec::new(),
            prev_valid: false,
            spare: Mutex::new(None),
        }
    }
}

impl Default for ConstraintSystem {
    fn default() -> ConstraintSystem {
        ConstraintSystem::new_along(Axis::X)
    }
}

impl ConstraintSystem {
    /// Creates an empty x-axis system (the paper's default direction).
    pub fn new() -> ConstraintSystem {
        ConstraintSystem::default()
    }

    /// Creates an empty system whose variables are edge coordinates
    /// along `axis`.
    pub fn new_along(axis: Axis) -> ConstraintSystem {
        ConstraintSystem {
            axis,
            var_initial: Vec::new(),
            pitch_names: Vec::new(),
            constraints: Vec::new(),
            graph: OnceLock::new(),
            prev_axis: axis,
            prev_var_initial: Vec::new(),
            prev_constraints: Vec::new(),
            prev_valid: false,
            spare: Mutex::new(None),
        }
    }

    /// Empties the system for refilling along `axis`, keeping every
    /// allocation — variable and constraint storage, and the cached CSR
    /// graph's buffers — for the next sweep. The outgoing content is
    /// snapshotted: if the refill reproduces it exactly (the common case
    /// once a compaction alternation converges), [`ConstraintSystem::graph`]
    /// hands back the previous graph without rebuilding anything.
    pub fn reset(&mut self, axis: Axis) {
        self.prev_valid = self.graph.get().is_some();
        if let Some(g) = self.graph.take() {
            match self.spare.lock() {
                Ok(mut spare) => *spare = Some(g),
                Err(_) => self.prev_valid = false,
            }
        }
        std::mem::swap(&mut self.var_initial, &mut self.prev_var_initial);
        std::mem::swap(&mut self.constraints, &mut self.prev_constraints);
        self.prev_axis = self.axis;
        self.axis = axis;
        self.var_initial.clear();
        self.constraints.clear();
        self.pitch_names.clear();
    }

    /// Drops the cached graph after a structural mutation, parking it so
    /// the next build can recycle its buffers.
    fn discard_graph(&mut self) {
        if let Some(g) = self.graph.take() {
            self.prev_valid = false;
            if let Ok(mut spare) = self.spare.lock() {
                *spare = Some(g);
            }
        }
    }

    /// The axis this system's variables move along.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Adds an edge variable with its position in the initial layout
    /// (used by the sorted-edge optimization and as the solver's hint).
    pub fn add_var(&mut self, initial: i64) -> VarId {
        self.discard_graph();
        self.var_initial.push(initial);
        VarId(self.var_initial.len() - 1)
    }

    /// Adds a named pitch variable.
    pub fn add_pitch(&mut self, name: impl Into<String>) -> PitchId {
        self.pitch_names.push(name.into());
        PitchId(self.pitch_names.len() - 1)
    }

    /// Adds `x_to − x_from ≥ weight`.
    ///
    /// An exact duplicate of the *immediately preceding* constraint is
    /// dropped — generators that emit per-event often repeat the edge
    /// they just produced, and the duplicate changes nothing about the
    /// feasible region. (Non-adjacent duplicates still get in; the CSR
    /// build dedupes those per `(from, to, pitch)` class.)
    pub fn require(&mut self, from: VarId, to: VarId, weight: i64) {
        self.push(Constraint {
            to,
            from,
            weight,
            pitch: None,
        });
    }

    /// Like [`ConstraintSystem::require`] but *always* appends, returning
    /// the new constraint's index. For callers that record the slot in
    /// order to re-weight it later via [`ConstraintSystem::set_weight`]
    /// (the hierarchical pitch fixpoint): dedup would alias distinct
    /// logical slots and let one patch move another caller's constraint.
    pub fn require_slot(&mut self, from: VarId, to: VarId, weight: i64) -> usize {
        self.discard_graph();
        self.constraints.push(Constraint {
            to,
            from,
            weight,
            pitch: None,
        });
        self.constraints.len() - 1
    }

    /// Adds `x_to − x_from + coeff·λ ≥ weight` (same last-insert dedup
    /// as [`ConstraintSystem::require`]).
    pub fn require_with_pitch(
        &mut self,
        from: VarId,
        to: VarId,
        weight: i64,
        pitch: PitchId,
        coeff: i64,
    ) {
        self.push(Constraint {
            to,
            from,
            weight,
            pitch: Some((pitch, coeff)),
        });
    }

    fn push(&mut self, c: Constraint) {
        if self.constraints.last() == Some(&c) {
            return;
        }
        self.discard_graph();
        self.constraints.push(c);
    }

    /// Pins the distance `x_to − x_from` to exactly `d` (two constraints).
    pub fn require_exact(&mut self, from: VarId, to: VarId, d: i64) {
        self.require(from, to, d);
        self.require(to, from, -d);
    }

    /// Replaces the weight of constraint `index` **without** discarding
    /// the cached CSR graph: the edges are patched in their slots, and
    /// the sorted relaxation order (a function of initial positions) and
    /// topological order (a function of the edge set) stay valid. This
    /// is what makes iterating on one system cheap — the hierarchical
    /// pitch fixpoint re-solves the same graph dozens of times with only
    /// the λ-class weights moving.
    ///
    /// Two exceptions fall back to a (buffer-recycling) rebuild on next
    /// use: a *self-loop* crossing the vacuousness boundary (`from == to,
    /// w ≤ 0` is ignored by the topological order while `w > 0` is an
    /// unconditional positive cycle, so the effective edge set changes),
    /// and a re-weight that changes which member of a parallel-edge class
    /// dominates after CSR dedup.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_weight(&mut self, index: usize, weight: i64) {
        let c = &mut self.constraints[index];
        if c.weight == weight {
            return;
        }
        let self_loop = c.from == c.to;
        let flips_vacuous = self_loop && (c.weight <= 0) != (weight <= 0);
        c.weight = weight;
        if flips_vacuous {
            self.discard_graph();
        } else if self.graph.get().is_some() {
            let patched = self
                .graph
                .get_mut()
                .map(|g| g.try_patch(index, weight))
                .unwrap_or(false);
            if !patched {
                // The constraint was a parallel-class representative and
                // the patch would change which member dominates; rebuild
                // (recycling buffers) on next use.
                self.discard_graph();
            }
        }
    }

    /// Number of edge variables.
    pub fn num_vars(&self) -> usize {
        self.var_initial.len()
    }

    /// Every edge-variable handle, in index order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.var_initial.len()).map(VarId)
    }

    /// Number of pitch variables.
    pub fn num_pitches(&self) -> usize {
        self.pitch_names.len()
    }

    /// Initial (original-layout) position of a variable.
    pub fn initial(&self, v: VarId) -> i64 {
        self.var_initial[v.0]
    }

    /// Name of a pitch variable.
    pub fn pitch_name(&self, p: PitchId) -> &str {
        &self.pitch_names[p.0]
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// `true` if any constraint carries a pitch term (needs the LP path).
    pub fn has_pitch_terms(&self) -> bool {
        self.constraints.iter().any(|c| c.pitch.is_some())
    }

    /// The CSR adjacency view, built on first use and cached until the
    /// system is mutated. Shared by every solver backend.
    ///
    /// After a [`ConstraintSystem::reset`], a refill whose content
    /// matches the previous sweep byte-for-byte gets the previous graph
    /// back unchanged; any other refill still recycles its buffers.
    pub fn graph(&self) -> &ConstraintGraph {
        self.graph.get_or_init(|| {
            let spare = self.spare.lock().ok().and_then(|mut s| s.take());
            match spare {
                Some(g)
                    if self.prev_valid
                        && self.prev_axis == self.axis
                        && self.prev_var_initial == self.var_initial
                        && self.prev_constraints == self.constraints =>
                {
                    g
                }
                Some(g) => ConstraintGraph::build_reusing(self, g),
                None => ConstraintGraph::build(self),
            }
        })
    }

    /// Slack of one constraint under a candidate solution:
    /// `x_to − x_from + Σcλ − w`. Non-negative iff the constraint is
    /// satisfied; zero iff it is *tight* (binding).
    ///
    /// This is a diagnostic over caller-supplied vectors: positions or
    /// pitches that are missing read as 0, and the arithmetic saturates
    /// instead of wrapping — exact for anything within the
    /// [`rsg_geom::MAX_COORD`] ingest budget.
    pub fn slack_of(&self, c: &Constraint, positions: &[i64], pitches: &[i64]) -> i64 {
        let at = |xs: &[i64], i: usize| xs.get(i).copied().unwrap_or(0);
        let pitch = c
            .pitch
            .map_or(0, |(p, k)| k.saturating_mul(at(pitches, p.0)));
        at(positions, c.to.0)
            .saturating_sub(at(positions, c.from.0))
            .saturating_add(pitch)
            .saturating_sub(c.weight)
    }

    /// Per-constraint slack, in constraint order. `slacks[k] < 0` exactly
    /// when constraint `k` appears in [`ConstraintSystem::violations`].
    pub fn slacks(&self, positions: &[i64], pitches: &[i64]) -> Vec<i64> {
        self.constraints
            .iter()
            .map(|c| self.slack_of(c, positions, pitches))
            .collect()
    }

    /// The chain of tight constraints that pins `v` at its solved
    /// position: followed backward from `v` until a variable at position
    /// 0, returned in source-to-`v` order. For a least (left-packed)
    /// solution the effective weights of the chain sum to
    /// `positions[v]`.
    pub fn critical_path(&self, positions: &[i64], pitches: &[i64], v: VarId) -> Vec<Constraint> {
        crate::graph::critical_path(self, positions, pitches, v)
    }

    /// Checks a candidate solution; returns the violated constraints.
    pub fn violations(&self, positions: &[i64], pitches: &[i64]) -> Vec<Constraint> {
        self.constraints
            .iter()
            .copied()
            .filter(|c| self.slack_of(c, positions, pitches) < 0)
            .collect()
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConstraintSystem({} axis, {} vars, {} pitches, {} constraints)",
            self.axis,
            self.var_initial.len(),
            self.pitch_names.len(),
            self.constraints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let p = s.add_pitch("lambda_a");
        s.require(a, b, 5);
        s.require_with_pitch(b, a, -2, p, 1);
        assert_eq!(s.num_vars(), 2);
        assert_eq!(s.num_pitches(), 1);
        assert_eq!(s.initial(b), 10);
        assert_eq!(s.pitch_name(p), "lambda_a");
        assert!(s.has_pitch_terms());
        assert_eq!(s.constraints().len(), 2);
        assert!(s.to_string().contains("2 vars"));
    }

    #[test]
    fn axis_tag() {
        assert_eq!(ConstraintSystem::new().axis(), Axis::X);
        assert_eq!(ConstraintSystem::new_along(Axis::Y).axis(), Axis::Y);
        assert!(ConstraintSystem::new_along(Axis::Y)
            .to_string()
            .contains("y axis"));
    }

    #[test]
    fn violations_detected() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require(a, b, 5);
        assert_eq!(s.violations(&[0, 5], &[]).len(), 0);
        assert_eq!(s.violations(&[0, 4], &[]).len(), 1);
        let p = s.add_pitch("l");
        s.require_with_pitch(a, b, 8, p, 1);
        // b - a + λ >= 8: with b=5, λ=3 it holds exactly.
        assert_eq!(s.violations(&[0, 5], &[3]).len(), 0);
        assert_eq!(s.violations(&[0, 5], &[2]).len(), 1);
    }

    #[test]
    fn set_weight_patches_the_cached_graph() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let c = s.add_var(20);
        s.require(a, b, 5);
        s.require(b, c, 7);
        s.require(a, c, 3);
        let _ = s.graph(); // populate the cache
        s.set_weight(1, 9);
        // The patched graph must equal a cold build of the same system.
        let fresh = ConstraintGraph::build(&s);
        assert_eq!(*s.graph(), fresh);
        assert_eq!(s.constraints()[1].weight, 9);
    }

    #[test]
    fn set_weight_without_cache_just_updates() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        s.require(a, b, 5);
        s.set_weight(0, 6);
        assert_eq!(s.constraints()[0].weight, 6);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
    }

    #[test]
    fn solving_a_patched_system_matches_a_cold_one() {
        use crate::backend::{BellmanFord, Solver, Topological};
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let c = s.add_var(20);
        s.require(a, b, 5);
        s.require(b, c, 7);
        let _ = s.graph();
        let warm = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        s.set_weight(0, 11);
        s.set_weight(1, 3);
        let mut cold_sys = ConstraintSystem::new();
        let a2 = cold_sys.add_var(0);
        let b2 = cold_sys.add_var(10);
        let _c2 = cold_sys.add_var(20);
        cold_sys.require(a2, b2, 11);
        cold_sys.require(b2, _c2, 3);
        for solver in [&BellmanFord::SORTED as &dyn Solver, &Topological] {
            let patched = solver.solve_system(&s, &[]).unwrap();
            let cold = solver.solve_system(&cold_sys, &[]).unwrap();
            assert_eq!(patched.positions, cold.positions, "{}", solver.name());
        }
        // Warm-start over the patched graph is exact too.
        let seeded = BellmanFord::SORTED
            .solve_system_warm(&s, &[], &warm.positions)
            .unwrap();
        assert_eq!(seeded.positions, vec![0, 11, 14]);
    }

    #[test]
    fn self_loop_vacuousness_flip_rebuilds_topo() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        s.require(a, b, 5);
        s.require(a, a, 0); // vacuous self-loop (λ-floor pattern)
        assert!(s.graph().is_acyclic());
        // w > 0 turns the self-loop into a real positive cycle.
        s.set_weight(1, 1);
        assert!(!s.graph().is_acyclic());
        // …and back.
        s.set_weight(1, -2);
        assert!(s.graph().is_acyclic());
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
    }

    #[test]
    fn duplicate_adds_do_not_inflate_num_edges() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let c = s.add_var(20);
        s.require(a, b, 5);
        s.require(a, b, 5); // consecutive exact duplicate: dropped at insert
        assert_eq!(s.constraints().len(), 1);
        s.require(b, c, 7);
        s.require(a, b, 5); // non-adjacent duplicate: kept in the list…
        s.require(a, b, 3); // …and a weaker parallel edge too
        assert_eq!(s.constraints().len(), 4);
        // …but the CSR build dedupes per (from, to, pitch) class.
        assert_eq!(s.graph().num_edges(), 2);
        let p = s.add_pitch("l");
        s.require_with_pitch(a, b, 8, p, 1);
        s.require_with_pitch(a, b, 8, p, 1);
        assert_eq!(s.constraints().len(), 5);
        assert_eq!(s.graph().num_edges(), 3); // pitch term = distinct class
    }

    #[test]
    fn set_weight_on_deduped_parallel_edges_matches_cold_build() {
        use crate::backend::{BellmanFord, Solver};
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        s.require(a, b, 5);
        s.require(b, a, -20);
        s.require(a, b, 3); // dominated parallel edge
        let _ = s.graph();
        assert_eq!(s.graph().num_edges(), 2);
        // Dominated member moves but stays below the representative: no-op.
        s.set_weight(2, 4);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
        // Dominated member overtakes the representative: rebuild.
        s.set_weight(2, 9);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
        // Representative (now index 2) raised in place: patch.
        s.set_weight(2, 12);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
        // Representative lowered below the other member: rebuild again.
        s.set_weight(2, 1);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
        let solved = BellmanFord::SORTED.solve_system(&s, &[]).unwrap();
        assert_eq!(solved.positions, vec![0, 5]);
    }

    #[test]
    fn reset_reuses_graph_for_identical_refill() {
        let fill = |s: &mut ConstraintSystem| {
            let a = s.add_var(0);
            let b = s.add_var(10);
            let c = s.add_var(20);
            s.require(a, b, 5);
            s.require(b, c, 7);
        };
        let mut s = ConstraintSystem::new();
        fill(&mut s);
        let cold = s.graph().clone();
        s.reset(Axis::X);
        assert_eq!(s.num_vars(), 0);
        assert_eq!(s.constraints().len(), 0);
        fill(&mut s);
        assert_eq!(*s.graph(), cold);
        // A refill with different content must NOT reuse wholesale.
        s.reset(Axis::Y);
        let a = s.add_var(0);
        let b = s.add_var(4);
        s.require(a, b, 9);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
        assert_eq!(s.axis(), Axis::Y);
        assert_eq!(s.graph().num_edges(), 1);
    }

    #[test]
    fn require_slot_bypasses_dedup_and_returns_index() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(10);
        let i = s.require_slot(a, b, 5);
        let j = s.require_slot(a, b, 5); // identical, still appended
        assert_eq!((i, j), (0, 1));
        assert_eq!(s.constraints().len(), 2);
        s.set_weight(j, 8);
        assert_eq!(s.constraints()[1].weight, 8);
        assert_eq!(*s.graph(), ConstraintGraph::build(&s));
    }

    #[test]
    fn exact_constraints() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(7);
        s.require_exact(a, b, 7);
        assert!(s.violations(&[0, 7], &[]).is_empty());
        assert_eq!(s.violations(&[0, 8], &[]).len(), 1);
        assert_eq!(s.violations(&[0, 6], &[]).len(), 1);
    }
}
