//! PLA generation: the RSG-as-superset-of-HPLA claim (§1.2.2).
//!
//! The paper positions the RSG against HPLA, the author's earlier
//! design-by-example PLA generator: "The RSG can generate any PLA that
//! HPLA can", and the same sample cells "can also be used to generate
//! other layouts besides PLAs such as decoders and multiplexors". This
//! crate reproduces that comparison:
//!
//! * [`Personality`] — the configuration specification a PLA generator
//!   takes ("the number of inputs, outputs, product terms and the truth
//!   table"), with a functional [`Personality::evaluate`],
//! * [`cells::sample_layout`] — PLA sample cells (AND-plane square,
//!   OR-plane square, buffers, crosspoint masks) with labelled interfaces,
//! * [`rsg_pla`] — the RSG-driven generator (connectivity graph +
//!   interface table),
//! * [`relocation_pla`] — the HPLA-style baseline that places cells by
//!   direct pitch arithmetic (the "relocation scheme"),
//! * [`rsg_decoder`] — a decoder from the *same* sample cells, which the
//!   relocation scheme cannot express without a new hard-coded
//!   architecture.
//!
//! # Example
//!
//! ```
//! use rsg_hpla::Personality;
//!
//! // f0 = a·b̄ + ā·b (XOR), f1 = a·b.
//! let p = Personality::parse(&["10 10", "01 01", "11 01"], 2, 2).unwrap();
//! assert_eq!(p.evaluate(&[true, false]), vec![true, false]);
//! assert_eq!(p.evaluate(&[true, true]), vec![false, true]);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod cells;
pub mod compactor;
mod generate;
mod personality;

pub use generate::{relocation_pla, rsg_decoder, rsg_pla, GeneratedPla};
pub use personality::{AndBit, Personality, PersonalityError};
