//! The PLA configuration specification (truth table / personality).

use std::fmt;

/// One AND-plane crosspoint: how a product term uses an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AndBit {
    /// The product includes the true literal (`1` in the input cube).
    True,
    /// The product includes the complemented literal (`0`).
    Comp,
    /// The input does not appear in this product (`-`).
    DontCare,
}

/// A PLA personality: the AND-plane cubes and OR-plane connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Personality {
    inputs: usize,
    outputs: usize,
    and_plane: Vec<Vec<AndBit>>,
    or_plane: Vec<Vec<bool>>,
}

/// Personality validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersonalityError {
    /// A row had the wrong field count or width.
    Shape {
        /// Row index (0-based).
        row: usize,
        /// Description of the mismatch.
        message: String,
    },
    /// An unknown character in a cube.
    BadChar {
        /// Row index.
        row: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for PersonalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersonalityError::Shape { row, message } => write!(f, "row {row}: {message}"),
            PersonalityError::BadChar { row, ch } => {
                write!(f, "row {row}: bad personality character `{ch}`")
            }
        }
    }
}

impl std::error::Error for PersonalityError {}

impl Personality {
    /// Builds a personality from raw planes.
    ///
    /// # Errors
    ///
    /// Rejects rows whose widths disagree with `inputs`/`outputs`.
    pub fn new(
        inputs: usize,
        outputs: usize,
        and_plane: Vec<Vec<AndBit>>,
        or_plane: Vec<Vec<bool>>,
    ) -> Result<Personality, PersonalityError> {
        if and_plane.len() != or_plane.len() {
            return Err(PersonalityError::Shape {
                row: 0,
                message: format!(
                    "AND plane has {} rows but OR plane has {}",
                    and_plane.len(),
                    or_plane.len()
                ),
            });
        }
        for (row, cube) in and_plane.iter().enumerate() {
            if cube.len() != inputs {
                return Err(PersonalityError::Shape {
                    row,
                    message: format!("AND cube width {} != {} inputs", cube.len(), inputs),
                });
            }
        }
        for (row, out) in or_plane.iter().enumerate() {
            if out.len() != outputs {
                return Err(PersonalityError::Shape {
                    row,
                    message: format!("OR row width {} != {} outputs", out.len(), outputs),
                });
            }
        }
        Ok(Personality {
            inputs,
            outputs,
            and_plane,
            or_plane,
        })
    }

    /// Parses espresso-style rows `"<cube> <outputs>"`, e.g. `"1-0 01"`.
    /// Cube characters: `1` true, `0` complement, `-` don't-care.
    ///
    /// # Errors
    ///
    /// Propagates shape and character errors with row numbers.
    pub fn parse(
        rows: &[&str],
        inputs: usize,
        outputs: usize,
    ) -> Result<Personality, PersonalityError> {
        let mut and_plane = Vec::with_capacity(rows.len());
        let mut or_plane = Vec::with_capacity(rows.len());
        for (row, line) in rows.iter().enumerate() {
            let mut parts = line.split_whitespace();
            let (cube, outs) = match (parts.next(), parts.next()) {
                (Some(c), Some(o)) => (c, o),
                _ => {
                    return Err(PersonalityError::Shape {
                        row,
                        message: "expected `<cube> <outputs>`".into(),
                    })
                }
            };
            let mut and_row = Vec::with_capacity(inputs);
            for ch in cube.chars() {
                and_row.push(match ch {
                    '1' => AndBit::True,
                    '0' => AndBit::Comp,
                    '-' => AndBit::DontCare,
                    other => return Err(PersonalityError::BadChar { row, ch: other }),
                });
            }
            let mut or_row = Vec::with_capacity(outputs);
            for ch in outs.chars() {
                or_row.push(match ch {
                    '1' => true,
                    '0' => false,
                    other => return Err(PersonalityError::BadChar { row, ch: other }),
                });
            }
            and_plane.push(and_row);
            or_plane.push(or_row);
        }
        Personality::new(inputs, outputs, and_plane, or_plane)
    }

    /// A decoder personality: `n` inputs, `2ⁿ` one-hot outputs (the
    /// "decoders can be built from an AND plane" remark of §1.2.2).
    pub fn decoder(n: usize) -> Personality {
        assert!((1..=16).contains(&n), "unreasonable decoder width {n}");
        let terms = 1usize << n;
        let and_plane = (0..terms)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        if t >> i & 1 == 1 {
                            AndBit::True
                        } else {
                            AndBit::Comp
                        }
                    })
                    .collect()
            })
            .collect();
        let or_plane = (0..terms)
            .map(|t| (0..terms).map(|o| o == t).collect())
            .collect();
        Personality {
            inputs: n,
            outputs: terms,
            and_plane,
            or_plane,
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Number of product terms.
    pub fn products(&self) -> usize {
        self.and_plane.len()
    }

    /// The AND-plane crosspoint at `(product, input)`.
    pub fn and_bit(&self, product: usize, input: usize) -> AndBit {
        self.and_plane[product][input]
    }

    /// The OR-plane crosspoint at `(product, output)`.
    pub fn or_bit(&self, product: usize, output: usize) -> bool {
        self.or_plane[product][output]
    }

    /// Evaluates the sum-of-products function.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != inputs`.
    pub fn evaluate(&self, input: &[bool]) -> Vec<bool> {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        let fired: Vec<bool> = self
            .and_plane
            .iter()
            .map(|cube| {
                cube.iter().zip(input).all(|(bit, &v)| match bit {
                    AndBit::True => v,
                    AndBit::Comp => !v,
                    AndBit::DontCare => true,
                })
            })
            .collect();
        (0..self.outputs)
            .map(|o| {
                fired
                    .iter()
                    .zip(&self.or_plane)
                    .any(|(&f, row)| f && row[o])
            })
            .collect()
    }

    /// Crosspoint counts `(and_plane, or_plane)` — the mask instances the
    /// generators must place.
    pub fn crosspoint_counts(&self) -> (usize, usize) {
        let and = self
            .and_plane
            .iter()
            .flatten()
            .filter(|b| !matches!(b, AndBit::DontCare))
            .count();
        let or = self.or_plane.iter().flatten().filter(|&&b| b).count();
        (and, or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_evaluate_xor() {
        let p = Personality::parse(&["10 1", "01 1"], 2, 1).unwrap();
        assert_eq!(p.evaluate(&[false, false]), vec![false]);
        assert_eq!(p.evaluate(&[true, false]), vec![true]);
        assert_eq!(p.evaluate(&[false, true]), vec![true]);
        assert_eq!(p.evaluate(&[true, true]), vec![false]);
        assert_eq!(p.crosspoint_counts(), (4, 2));
    }

    #[test]
    fn dont_cares() {
        let p = Personality::parse(&["1- 1"], 2, 1).unwrap();
        assert_eq!(p.evaluate(&[true, false]), vec![true]);
        assert_eq!(p.evaluate(&[true, true]), vec![true]);
        assert_eq!(p.evaluate(&[false, true]), vec![false]);
    }

    #[test]
    fn decoder_is_one_hot() {
        let d = Personality::decoder(3);
        assert_eq!(d.inputs(), 3);
        assert_eq!(d.outputs(), 8);
        assert_eq!(d.products(), 8);
        for t in 0..8usize {
            let input: Vec<bool> = (0..3).map(|i| t >> i & 1 == 1).collect();
            let out = d.evaluate(&input);
            for (o, &bit) in out.iter().enumerate() {
                assert_eq!(bit, o == t, "t={t} o={o}");
            }
        }
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            Personality::parse(&["1 1", "10 1"], 2, 1),
            Err(PersonalityError::Shape { row: 0, .. })
        ));
        assert!(matches!(
            Personality::parse(&["1x 1"], 2, 1),
            Err(PersonalityError::BadChar { ch: 'x', .. })
        ));
        assert!(matches!(
            Personality::parse(&["10"], 2, 1),
            Err(PersonalityError::Shape { .. })
        ));
        assert!(Personality::new(1, 1, vec![vec![AndBit::True]], vec![]).is_err());
    }
}
