//! PLA sample cells and their labelled interfaces.
//!
//! One shared sample layout serves both the PLA and the decoder — the
//! §1.2.2 point that "requiring that the sample layout look like the
//! finished product is not only an unnecessary restriction, it also
//! reduces the scope within which any given sample layout may be used".

use rsg_core::RsgError;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{CellDefinition, CellTable, Instance, Layer};

/// Grid pitch of the PLA planes.
pub const GRID: i64 = 20;

/// Height of the input/output buffer cells.
pub const BUF_HEIGHT: i64 = 24;

fn square(name: &str, inner: Layer) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    c.add_box(Layer::Well, Rect::from_coords(0, 0, GRID, GRID));
    // The inner bus runs at the layer's minimum width, centred on the
    // grid square, so the sample tiles design-rule clean at GRID pitch
    // (paper §2.3: each cell is made correct by construction).
    let w = if inner == Layer::Metal1 { 6 } else { 4 };
    let lo = (GRID - w) / 2;
    c.add_box(inner, Rect::from_coords(lo, 0, lo + w, GRID));
    c
}

fn buffer(name: &str) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    c.add_box(Layer::Well, Rect::from_coords(0, 0, GRID, BUF_HEIGHT));
    // Top margin of 6 keeps the buffer's metal a full metal-metal
    // spacing away from the plane bus it abuts.
    c.add_box(Layer::Metal1, Rect::from_coords(4, 4, 16, BUF_HEIGHT - 6));
    c
}

fn mask(name: &str, layer: Layer, rect: Rect) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    c.add_box(layer, rect);
    c
}

/// Builds the PLA sample layout: `and_sq`, `or_sq`, `in_buf`, `out_buf`,
/// crosspoint masks `xand`, `xcomp`, `xorm`, and one labelled assembly
/// cell per interface.
///
/// # Errors
///
/// Returns [`RsgError::Layout`] if the table rejects a cell — the names
/// are statically unique and the coordinates are within the ingest
/// budget, so a failure indicates a bug in this module, reported rather
/// than panicked.
pub fn sample_layout() -> Result<CellTable, RsgError> {
    let mut t = CellTable::new();
    let and_sq = t.insert(square("and_sq", Layer::Poly))?;
    let or_sq = t.insert(square("or_sq", Layer::Metal1))?;
    let in_buf = t.insert(buffer("in_buf"))?;
    let out_buf = t.insert(buffer("out_buf"))?;
    let xand_r = Rect::from_coords(2, 2, 8, 8);
    let xcomp_r = Rect::from_coords(2, 12, 8, 18);
    let xorm_r = Rect::from_coords(12, 2, 18, 8);
    let xand = t.insert(mask("xand", Layer::Cut, xand_r))?;
    let xcomp = t.insert(mask("xcomp", Layer::Cut, xcomp_r))?;
    let xorm = t.insert(mask("xorm", Layer::Via, xorm_r))?;

    let pair = |name: &str,
                a: rsg_layout::CellId,
                b: rsg_layout::CellId,
                b_at: Point,
                label: &str,
                label_at: Point| {
        let mut s = CellDefinition::new(name);
        s.add_instance(Instance::new(a, Point::new(0, 0), Orientation::NORTH));
        s.add_instance(Instance::new(b, b_at, Orientation::NORTH));
        s.add_label(label, label_at);
        s
    };

    let cells = [
        // and_sq–and_sq horizontal (#1) and vertical (#2).
        pair(
            "s_and_h",
            and_sq,
            and_sq,
            Point::new(GRID, 0),
            "1",
            Point::new(GRID, GRID / 2),
        ),
        pair(
            "s_and_v",
            and_sq,
            and_sq,
            Point::new(0, -GRID),
            "2",
            Point::new(GRID / 2, 0),
        ),
        // or plane.
        pair(
            "s_or_h",
            or_sq,
            or_sq,
            Point::new(GRID, 0),
            "1",
            Point::new(GRID, GRID / 2),
        ),
        pair(
            "s_or_v",
            or_sq,
            or_sq,
            Point::new(0, -GRID),
            "2",
            Point::new(GRID / 2, 0),
        ),
        // AND→OR bridge.
        pair(
            "s_bridge",
            and_sq,
            or_sq,
            Point::new(GRID, 0),
            "1",
            Point::new(GRID, GRID / 2),
        ),
        // buffers.
        pair(
            "s_inbuf",
            and_sq,
            in_buf,
            Point::new(0, GRID),
            "1",
            Point::new(GRID / 2, GRID),
        ),
        pair(
            "s_outbuf",
            or_sq,
            out_buf,
            Point::new(0, -BUF_HEIGHT),
            "1",
            Point::new(GRID / 2, 0),
        ),
        // The decoder reuse: output buffers directly under the AND plane.
        pair(
            "s_and_outbuf",
            and_sq,
            out_buf,
            Point::new(0, -BUF_HEIGHT),
            "1",
            Point::new(GRID / 2, 0),
        ),
        // crosspoint masks.
        pair(
            "s_xand",
            and_sq,
            xand,
            Point::new(0, 0),
            "1",
            Point::new(5, 5),
        ),
        pair(
            "s_xcomp",
            and_sq,
            xcomp,
            Point::new(0, 0),
            "1",
            Point::new(5, 15),
        ),
        pair(
            "s_xorm",
            or_sq,
            xorm,
            Point::new(0, 0),
            "1",
            Point::new(15, 5),
        ),
    ];
    for c in cells {
        t.insert(c)?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::extract_interfaces;

    #[test]
    fn sample_defines_eleven_interfaces() {
        let found = extract_interfaces(&sample_layout().unwrap()).unwrap();
        assert_eq!(found.len(), 11);
    }

    #[test]
    fn cells_present() {
        let t = sample_layout().unwrap();
        for name in [
            "and_sq", "or_sq", "in_buf", "out_buf", "xand", "xcomp", "xorm",
        ] {
            assert!(t.lookup(name).is_some(), "{name}");
        }
    }
}
