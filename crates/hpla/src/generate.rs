//! The two PLA generators (RSG vs relocation) and the decoder.

use crate::cells::{sample_layout, BUF_HEIGHT, GRID};
use crate::{AndBit, Personality};
use rsg_core::{Rsg, RsgError};
use rsg_geom::{Orientation, Point};
use rsg_layout::{CellDefinition, CellId, CellTable, Instance};

/// A generated PLA (or decoder) layout.
#[derive(Debug)]
pub struct GeneratedPla {
    /// Generator state (cell + interface tables).
    pub rsg: Rsg,
    /// The top cell.
    pub top: CellId,
}

/// Looks up a sample cell by name; the sample defines every name used
/// here, so a miss is an internal bug, reported as a typed error.
fn require(table: &CellTable, name: &str) -> Result<CellId, RsgError> {
    table
        .lookup(name)
        .ok_or_else(|| RsgError::Layout(rsg_layout::LayoutError::UnknownCell(name.into())))
}

/// Generates a PLA through the RSG: connectivity graph over the sampled
/// interfaces, personalized by crosspoint masks.
///
/// # Errors
///
/// Propagates generator errors (these indicate an internal bug — the
/// sample provides every interface used here).
pub fn rsg_pla(p: &Personality, name: &str) -> Result<GeneratedPla, RsgError> {
    let mut rsg = Rsg::from_sample(sample_layout()?)?;
    let and_sq = require(rsg.cells(), "and_sq")?;
    let or_sq = require(rsg.cells(), "or_sq")?;
    let in_buf = require(rsg.cells(), "in_buf")?;
    let out_buf = require(rsg.cells(), "out_buf")?;
    let xand = require(rsg.cells(), "xand")?;
    let xcomp = require(rsg.cells(), "xcomp")?;
    let xorm = require(rsg.cells(), "xorm")?;

    let (ni, np, no) = (p.inputs(), p.products(), p.outputs());
    let mut first_col_of_row = Vec::with_capacity(np);
    for prod in 0..np {
        // AND row.
        let mut prev = None;
        let mut row_first = None;
        for i in 0..ni {
            let sq = rsg.mk_instance(and_sq);
            if let Some(pv) = prev {
                rsg.connect(pv, sq, 1)?;
            }
            match p.and_bit(prod, i) {
                AndBit::True => {
                    let m = rsg.mk_instance(xand);
                    rsg.connect(sq, m, 1)?;
                }
                AndBit::Comp => {
                    let m = rsg.mk_instance(xcomp);
                    rsg.connect(sq, m, 1)?;
                }
                AndBit::DontCare => {}
            }
            if row_first.is_none() {
                row_first = Some(sq);
            }
            // Input buffers across the top row only.
            if prod == 0 {
                let b = rsg.mk_instance(in_buf);
                rsg.connect(sq, b, 1)?;
            }
            prev = Some(sq);
        }
        // OR row continues to the right.
        for o in 0..no {
            let sq = rsg.mk_instance(or_sq);
            let Some(pv) = prev else {
                return Err(RsgError::Invalid("personality has no input columns".into()));
            };
            rsg.connect(pv, sq, 1)?;
            if p.or_bit(prod, o) {
                let m = rsg.mk_instance(xorm);
                rsg.connect(sq, m, 1)?;
            }
            // Output buffers along the bottom row.
            if prod == np - 1 {
                let b = rsg.mk_instance(out_buf);
                rsg.connect(sq, b, 1)?;
            }
            prev = Some(sq);
        }
        let Some(rf) = row_first else {
            return Err(RsgError::Invalid("personality row is empty".into()));
        };
        if let Some(&prev_first) = first_col_of_row.last() {
            rsg.connect(prev_first, rf, 2)?;
        }
        first_col_of_row.push(rf);
    }
    let top = rsg.mk_cell(name, first_col_of_row[0])?;
    Ok(GeneratedPla { rsg, top })
}

/// The HPLA-style baseline: the same architecture placed by direct pitch
/// arithmetic (the "relocation scheme") with no connectivity graph, no
/// interface table, and the PLA architecture hard-coded.
///
/// Returns a cell table containing the sample cells plus the assembled
/// PLA.
///
/// # Errors
///
/// Propagates sample-layout construction errors; any other failure
/// indicates an internal bug, reported rather than panicked.
pub fn relocation_pla(p: &Personality, name: &str) -> Result<(CellTable, CellId), RsgError> {
    let mut table = sample_layout()?;
    let and_sq = require(&table, "and_sq")?;
    let or_sq = require(&table, "or_sq")?;
    let in_buf = require(&table, "in_buf")?;
    let out_buf = require(&table, "out_buf")?;
    let xand = require(&table, "xand")?;
    let xcomp = require(&table, "xcomp")?;
    let xorm = require(&table, "xorm")?;

    let (ni, np, no) = (p.inputs(), p.products(), p.outputs());
    let mut cell = CellDefinition::new(name);
    let place = |cell: &mut CellDefinition, id: CellId, x: i64, y: i64| {
        cell.add_instance(Instance::new(id, Point::new(x, y), Orientation::NORTH));
    };
    for prod in 0..np {
        let y = -(prod as i64) * GRID;
        for i in 0..ni {
            let x = i as i64 * GRID;
            place(&mut cell, and_sq, x, y);
            match p.and_bit(prod, i) {
                AndBit::True => place(&mut cell, xand, x, y),
                AndBit::Comp => place(&mut cell, xcomp, x, y),
                AndBit::DontCare => {}
            }
            if prod == 0 {
                place(&mut cell, in_buf, x, GRID);
            }
        }
        for o in 0..no {
            let x = (ni + o) as i64 * GRID;
            place(&mut cell, or_sq, x, y);
            if p.or_bit(prod, o) {
                place(&mut cell, xorm, x, y);
            }
            if prod == np - 1 {
                place(&mut cell, out_buf, x, y - BUF_HEIGHT);
            }
        }
    }
    let id = table.insert(cell)?;
    Ok((table, id))
}

/// A decoder from the *same* sample cells: an AND plane with output
/// buffers (§1.2.2). Product terms run as columns; input lines as rows.
///
/// # Errors
///
/// Propagates generator errors.
pub fn rsg_decoder(n: usize, name: &str) -> Result<GeneratedPla, RsgError> {
    let d = Personality::decoder(n);
    let mut rsg = Rsg::from_sample(sample_layout()?)?;
    let and_sq = require(rsg.cells(), "and_sq")?;
    let out_buf = require(rsg.cells(), "out_buf")?;
    let xand = require(rsg.cells(), "xand")?;
    let xcomp = require(rsg.cells(), "xcomp")?;

    let terms = d.products();
    let mut prev_row_first = None;
    let mut root = None;
    for row in 0..n {
        let mut prev = None;
        for t in 0..terms {
            let sq = rsg.mk_instance(and_sq);
            if let Some(pv) = prev {
                rsg.connect(pv, sq, 1)?;
            } else if let Some(prf) = prev_row_first {
                rsg.connect(prf, sq, 2)?;
            }
            let m = rsg.mk_instance(if t >> row & 1 == 1 { xand } else { xcomp });
            rsg.connect(sq, m, 1)?;
            // Output buffers under the bottom row.
            if row == n - 1 {
                let b = rsg.mk_instance(out_buf);
                rsg.connect(sq, b, 1)?;
            }
            if prev.is_none() {
                prev_row_first = Some(sq);
                if root.is_none() {
                    root = Some(sq);
                }
            }
            prev = Some(sq);
        }
    }
    let Some(root) = root else {
        return Err(RsgError::Invalid("decoder needs n >= 1 inputs".into()));
    };
    let top = rsg.mk_cell(name, root)?;
    Ok(GeneratedPla { rsg, top })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_layout::stats::LayoutStats;
    use std::collections::BTreeMap;

    fn xor_personality() -> Personality {
        Personality::parse(&["10 10", "01 10", "11 01"], 2, 2).unwrap()
    }

    fn flat_signature(
        cells: &CellTable,
        top: CellId,
    ) -> BTreeMap<(rsg_layout::Layer, rsg_geom::Rect), usize> {
        let mut sig = BTreeMap::new();
        for b in rsg_layout::flatten(cells, top).unwrap() {
            *sig.entry((b.layer, b.rect)).or_insert(0) += 1;
        }
        sig
    }

    #[test]
    fn rsg_pla_counts() {
        let p = xor_personality();
        let out = rsg_pla(&p, "pla").unwrap();
        let def = out.rsg.cells().require(out.top).unwrap();
        let count = |name: &str| {
            let id = out.rsg.cells().lookup(name).unwrap();
            def.instances().filter(|i| i.cell == id).count()
        };
        assert_eq!(count("and_sq"), 2 * 3);
        assert_eq!(count("or_sq"), 2 * 3);
        assert_eq!(count("in_buf"), 2);
        assert_eq!(count("out_buf"), 2);
        let (and_x, or_x) = p.crosspoint_counts();
        assert_eq!(count("xand") + count("xcomp"), and_x);
        assert_eq!(count("xorm"), or_x);
    }

    #[test]
    fn rsg_equals_relocation_baseline() {
        // §1.2.2: "The RSG can generate any PLA that HPLA can" — the flat
        // geometry must be identical.
        for rows in [
            vec!["10 1", "01 1"],
            vec!["10 10", "01 10", "11 01"],
            vec!["1-0 100", "011 010", "--1 001", "101 111"],
        ] {
            let ni = rows[0].split_whitespace().next().unwrap().len();
            let no = rows[0].split_whitespace().nth(1).unwrap().len();
            let p = Personality::parse(&rows, ni, no).unwrap();
            let a = rsg_pla(&p, "pla").unwrap();
            let (bt, bid) = relocation_pla(&p, "pla_relo").unwrap();
            assert_eq!(
                flat_signature(a.rsg.cells(), a.top),
                flat_signature(&bt, bid),
                "{rows:?}"
            );
        }
    }

    #[test]
    fn decoder_from_same_sample() {
        let out = rsg_decoder(3, "dec3").unwrap();
        let def = out.rsg.cells().require(out.top).unwrap();
        let count = |name: &str| {
            let id = out.rsg.cells().lookup(name).unwrap();
            def.instances().filter(|i| i.cell == id).count()
        };
        assert_eq!(count("and_sq"), 3 * 8);
        assert_eq!(count("out_buf"), 8);
        assert_eq!(count("xand") + count("xcomp"), 24);
        // No OR plane at all — different architecture, same cells.
        assert_eq!(count("or_sq"), 0);
        let stats = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
        assert!(stats.total_boxes > 0);
    }

    #[test]
    fn generated_pla_is_gridded() {
        let p = xor_personality();
        let out = rsg_pla(&p, "pla").unwrap();
        let def = out.rsg.cells().require(out.top).unwrap();
        let and_id = out.rsg.cells().lookup("and_sq").unwrap();
        for inst in def.instances().filter(|i| i.cell == and_id) {
            assert_eq!(inst.point_of_call.x.rem_euclid(GRID), 0);
            assert_eq!(inst.point_of_call.y.rem_euclid(GRID), 0);
        }
    }
}
