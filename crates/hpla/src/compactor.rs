//! Leaf compaction of the PLA cell library (§6.1 applied to the HPLA
//! sample cells).
//!
//! The PLA planes replicate `and_sq`/`or_sq` hundreds of times for large
//! personalities, so compacting the flat result would redo the same work
//! per crosspoint; compacting the library once with the plane pitch as
//! an unknown is the paper's leaf-compactor economics. The plane squares
//! and the buffer row are *independent* constraint systems, so they form
//! two [`LibraryJob`]s for the parallel batch compactor.

use crate::cells::GRID;
use rsg_compact::backend::Solver;
use rsg_compact::hier::{self, ChipCompaction, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_compact::leaf::{
    compact_batch, CompactionResult, LeafInterface, LibraryJob, Parallelism, PitchKind,
};
use rsg_core::RsgError;
use rsg_layout::{CellDefinition, CellId, CellTable, DesignRules, LayoutError};
use rsg_serve::{JobOutput, JobQueue, JobSpec, ServeError};

/// The independent compaction jobs of the PLA library: the plane squares
/// (AND/OR with the shared horizontal grid pitch and the vertical
/// abutment) and the buffer row (its own horizontal pitch).
///
/// # Errors
///
/// Propagates sample-layout construction errors.
pub fn library_jobs() -> Result<Vec<LibraryJob>, RsgError> {
    let sample = crate::cells::sample_layout()?;
    let cell = |name: &str| -> Result<CellDefinition, RsgError> {
        let id = sample
            .lookup(name)
            .ok_or_else(|| RsgError::Layout(LayoutError::UnknownCell(name.into())))?;
        Ok(sample.require(id)?.clone())
    };
    let squares = {
        LibraryJob {
            cells: vec![cell("and_sq")?, cell("or_sq")?],
            interfaces: vec![
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX {
                        initial: GRID,
                        weight: 8,
                    },
                    y_offset: 0,
                    name: "and_pitch".into(),
                },
                LeafInterface {
                    cell_a: 1,
                    cell_b: 1,
                    kind: PitchKind::VariableX {
                        initial: GRID,
                        weight: 4,
                    },
                    y_offset: 0,
                    name: "or_pitch".into(),
                },
                // The AND→OR bridge at the plane boundary. Historically
                // a FixedX(GRID) abutment because the plane squares do
                // not interact across it and the free pitch collapsed to
                // 0; the leaf compactor now floors free pitches at the
                // technology's smallest spacing rule, so the bridge can
                // compact like every other interface.
                LeafInterface {
                    cell_a: 0,
                    cell_b: 1,
                    kind: PitchKind::VariableX {
                        initial: GRID,
                        weight: 1,
                    },
                    y_offset: 0,
                    name: "bridge".into(),
                },
                // Vertical abutment of plane rows: fixed 0 x-offset.
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::FixedX(0),
                    y_offset: -GRID,
                    name: "row".into(),
                },
            ],
        }
    };
    let buffers = {
        LibraryJob {
            cells: vec![cell("in_buf")?, cell("out_buf")?],
            interfaces: vec![LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX {
                    initial: GRID,
                    weight: 2,
                },
                y_offset: 0,
                name: "buf_pitch".into(),
            }],
        }
    };
    Ok(vec![squares, buffers])
}

/// Compacts the PLA library for a target technology through any backend,
/// fanning the independent jobs out per [`Parallelism`].
///
/// # Errors
///
/// Returns the first error any job produced.
pub fn compact_library(
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<Vec<CompactionResult>, RsgError> {
    compact_batch(&library_jobs()?, rules, solver, parallelism)
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(RsgError::from)
}

/// Compacts an assembled PLA end to end, the paper's top-level flow:
/// **leaf pass** (compact the library cells once, λ pitches as unknowns)
/// then **hier pass** (re-place the instances against the compacted
/// cells' interface abstracts, rows/columns pitch-matched through shared
/// λ classes) — the mask data is never flattened.
///
/// `table`/`top` come from either generator ([`crate::rsg_pla`] /
/// [`crate::relocation_pla`]); the returned
/// [`rsg_compact::hier::ChipLayout`] holds the updated table with the
/// same ids.
///
/// # Errors
///
/// Returns [`RsgError`] when either pass fails.
pub fn compact_chip(
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<ChipCompaction, RsgError> {
    let leaf = compact_library(rules, solver, parallelism)?;
    let opts = HierOptions {
        parallelism,
        ..HierOptions::default()
    };
    hier::compact_chip_with_library(table, top, leaf, rules, solver, &opts).map_err(RsgError::from)
}

/// [`compact_chip`] through a persistent [`CompactSession`]: the first
/// call is a cold run, subsequent calls after an edit recompact only the
/// definitions the edit is visible from. Results are bit-identical to
/// [`compact_chip`] on the same input at every `parallelism` setting.
///
/// # Errors
///
/// Returns [`RsgError`] when either pass fails.
pub fn compact_chip_session(
    session: &mut CompactSession,
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<ChipCompaction, RsgError> {
    let opts = HierOptions {
        parallelism,
        ..HierOptions::default()
    };
    session
        .compact_chip_with_library(table, top, &library_jobs()?, rules, solver, &opts)
        .map_err(RsgError::from)
}

/// [`compact_chip`] through a [`JobQueue`]: the whole-chip job (library
/// included) is content-addressed, so resubmitting an unchanged PLA is
/// served from the queue's on-disk store with **zero** solver
/// invocations and byte-identical CIF. Rules, solver, and options come
/// from the queue's [`rsg_serve::ServeConfig`] — they are part of the
/// store key.
///
/// # Errors
///
/// [`ServeError::Client`] when the library jobs cannot be built;
/// otherwise whatever the served job produced.
pub fn compact_chip_served(
    queue: &JobQueue,
    table: &CellTable,
    top: CellId,
) -> Result<JobOutput, ServeError> {
    let library =
        library_jobs().map_err(|e| ServeError::Client(format!("hpla library jobs: {e}")))?;
    let id = queue.submit(JobSpec::Chip {
        table: table.clone(),
        top,
        library,
    })?;
    queue.fetch(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_compact::backend::BellmanFord;
    use rsg_layout::Technology;

    #[test]
    fn library_compacts_and_pitches_shrink() {
        let tech = Technology::mead_conway(2);
        let out = compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Auto).unwrap();
        assert_eq!(out.len(), 2);
        for result in &out {
            for (name, pitch) in &result.pitches {
                assert!(
                    *pitch >= tech.rules.spacing_floor(),
                    "{name} = {pitch} under the spacing floor"
                );
                assert!(*pitch <= GRID, "{name} = {pitch} exceeds the sample grid");
            }
        }
        // The bridge is a free pitch again (the collapse quirk is fixed
        // by the spacing floor) and reports what pins it.
        let squares = &out[0];
        let bridge = squares.bindings.iter().find(|b| b.name == "bridge");
        let bridge = bridge.expect("bridge pitch is variable now");
        assert!(bridge.value >= tech.rules.spacing_floor());
        assert!(!bridge.tight.is_empty(), "something must pin the bridge");
    }

    #[test]
    fn parallel_matches_serial() {
        let tech = Technology::mead_conway(2);
        let serial =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Serial).unwrap();
        let parallel =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Auto).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn compact_chip_shrinks_pitch_matches_and_stays_clean() {
        let tech = Technology::mead_conway(2);
        let p = crate::Personality::parse(&["10 10", "01 10", "11 01"], 2, 2).unwrap();
        let pla = crate::rsg_pla(&p, "pla").unwrap();
        let out = compact_chip(
            pla.rsg.cells(),
            pla.top,
            &tech.rules,
            &BellmanFord::SORTED,
            Parallelism::Auto,
        )
        .unwrap();

        // Flatten only to *verify*: clean under the independent referee,
        // and strictly smaller than the sample-pitch assembly.
        let before = rsg_layout::flatten(pla.rsg.cells(), pla.top).unwrap();
        let after = rsg_layout::flatten(&out.chip.table, out.chip.top).unwrap();
        assert!(rsg_layout::drc::check_flat(&after, &tech.rules).is_empty());
        let (b, a) = (before.bbox().rect().unwrap(), after.bbox().rect().unwrap());
        assert!(
            a.width() * a.height() < b.width() * b.height(),
            "chip must shrink: {b} -> {a}"
        );

        // Pitch matching: every AND-plane row realizes one uniform pitch.
        let top_def = out.chip.table.require(out.chip.top).unwrap();
        let and_id = out.chip.table.lookup("and_sq").unwrap();
        let mut rows: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for inst in top_def.instances().filter(|i| i.cell == and_id) {
            rows.entry(inst.point_of_call.y)
                .or_default()
                .push(inst.point_of_call.x);
        }
        let mut gaps = Vec::new();
        for xs in rows.values_mut() {
            xs.sort_unstable();
            gaps.extend(xs.windows(2).map(|w| w[1] - w[0]));
        }
        assert!(!gaps.is_empty());
        assert!(
            gaps.windows(2).all(|w| w[0] == w[1]),
            "AND columns not pitch-matched: {gaps:?}"
        );
        let outcome = out.chip.outcome("pla").expect("top outcome");
        let lambda = outcome
            .pitches
            .iter()
            .find(|p| p.name.contains("and_sq->and_sq") && p.axis == rsg_geom::Axis::X)
            .expect("AND pitch class")
            .value;
        assert_eq!(gaps[0], lambda, "realized gap must equal the class λ");
    }
}
